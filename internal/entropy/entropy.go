// Package entropy solves the KL/entropy objective family of the constrained
// matrix problem: minimize the weighted generalized Kullback–Leibler
// divergence to the prior,
//
//	Σ_ij γ_ij (x_ij·ln(x_ij/x⁰_ij) − x_ij + x⁰_ij)  (+ elastic totals terms)
//
// subject to the same fixed, elastic, balanced or interval row/column totals
// and box bounds as the quadratic family. This is Oikonomou's "most likely
// matrix" model; with fixed totals, a positive prior and no binding bounds
// its solution is the biproportional (RAS/Sinkhorn) limit characterized by
// Aas — which the tests cross-check against.
//
// The method is generalized iterative scaling, the multiplicative sibling of
// internal/scale's additive ISP. Stationarity of the Lagrangian in x gives
// the exponential dual response
//
//	x_ij(λ,μ) = clamp(x⁰_ij · e^{(λ_i+μ_j)/γ_ij}, l_ij, u_ij)
//
// and the dual problem is smooth and concave; block-coordinate ascent
// alternates exact row solves (each λ_i from a monotone one-dimensional
// equation, safeguarded Newton) with batched column passes accumulated
// row-major (no CSC mirror), exactly the ISP sweep structure. The elastic
// totals keep their quadratic penalties, so the elastic dual relations
// s_i = s⁰_i − λ_i/(2α_i) carry over from the quadratic family unchanged.
//
// Every sweep is serial and accumulates in a fixed order, so solutions are
// bit-identical regardless of Options.Procs — the determinism property the
// rest of the repository guarantees comes for free here.
package entropy

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sea/internal/core"
	"sea/internal/mat"
	"sea/internal/metrics"
	"sea/internal/scale"
	"sea/internal/trace"
)

// ErrDomain is returned when the problem's data lies outside the entropy
// objective's domain: a negative prior entry, or a positive lower bound over
// a zero prior cell (the KL term is +∞ there). Callers in pkg/sea wrap it in
// ErrInvalidProblem.
var ErrDomain = errors.New("entropy: problem outside the KL domain")

// maxExpArg caps the exponent argument (λ_i+μ_j)/γ_ij so the response stays
// finite through the Newton safeguards instead of overflowing to +Inf midway
// through a bracketing phase. e^700 ≈ 1.0e304 leaves headroom for sums.
const maxExpArg = 700

// maxInner caps the safeguarded-Newton iterations spent on one row equation
// or one batched column pass per half-sweep (the ISP budget; exponentials
// resolve in a handful of steps).
const maxInner = 32

// System is the multiplicative dual-scaling view of a diagonal entropy
// problem. G holds the weights γ_ij (the problem's storage layout fixes the
// layout of X0/Lo/Up); the remaining fields mirror scale.System, plus the
// interval-totals mode the additive system does not model.
type System struct {
	G      scale.Matrix
	X0     []float64
	Lo, Up []float64
	// RowTarget/ColTarget and RowDiag/ColDiag: the equation
	// Σ x(λ,μ) + diag·z = target per row/column (diag = 1/(2α) elastic,
	// 0 fixed). Coupled marks the Balanced kind (shared totals, the elastic
	// term e_i(λ_i+μ_i) on both sides).
	RowTarget, ColTarget []float64
	RowDiag, ColDiag     []float64
	Coupled              bool
	// Interval mode: RowTarget/ColTarget are ignored in favour of the
	// bounds, and each equation's target side is chosen by complementarity
	// (sum at z = 0 inside the interval ⇒ multiplier 0).
	Interval                   bool
	RowLo, RowHi, ColLo, ColHi []float64

	// Scratch for the batched column half-sweep.
	colSum, colSlope, colSum0 []float64
	bracketLo, bracketHi      []float64
	colTargetBuf, colDiagBuf  []float64
	colActive                 []bool
}

// respAt evaluates x_k(z) = clamp(x⁰_k·e^{z/γ_k}, l_k, u_k) and its slope
// dx/dz = x/γ (zero when clamped or overflowed).
func (s *System) respAt(k int, z float64) (x, slope float64) {
	g := s.G.Val[k]
	lo := 0.0
	if s.Lo != nil {
		lo = s.Lo[k]
	}
	e := z / g
	if e > maxExpArg {
		e = maxExpArg
	}
	t := s.X0[k] * math.Exp(e)
	if t <= lo {
		return lo, 0
	}
	if s.Up != nil && t >= s.Up[k] {
		return s.Up[k], 0
	}
	if math.IsInf(t, 1) {
		return t, 0
	}
	return t, t / g
}

// newtonStep advances one safeguarded Newton step on a monotone increasing
// equation g(z) = 0 evaluated at z (the scale.System safeguard: tighten the
// bracket on the current sign's side, fall back to bisection when the Newton
// candidate leaves the open bracket or the slope vanishes, expand a
// one-sided bracket geometrically). ok = false means the iteration cannot
// move any further.
func newtonStep(z, g, slope float64, blo, bhi, step *float64) (next float64, ok bool) {
	if g > 0 {
		*bhi = z
	} else {
		*blo = z
	}
	if slope > 0 && !math.IsInf(g, 0) {
		next = z - g/slope
		if next > *blo && next < *bhi {
			return next, true
		}
	}
	if !math.IsInf(*blo, 0) && !math.IsInf(*bhi, 0) {
		next = 0.5 * (*blo + *bhi)
		return next, next > *blo && next < *bhi
	}
	if g > 0 {
		next = z - *step*(1+math.Abs(z))
	} else {
		next = z + *step*(1+math.Abs(z))
	}
	*step *= 2
	return next, true
}

// intervalViolation is the dual-gradient violation of an interval equation
// at multiplier z: for z ≠ 0 the active bound's residual, for z = 0 the
// distance of the sum from the interval.
func intervalViolation(sum, lo, hi, z float64) float64 {
	switch {
	case z > 0:
		return math.Abs(sum - lo)
	case z < 0:
		return math.Abs(sum - hi)
	case sum < lo:
		return lo - sum
	case sum > hi:
		return sum - hi
	default:
		return 0
	}
}

// rowEval computes Σ_j x_ij(z+μ_j) and the interior slope of row i.
func (s *System) rowEval(i int, z float64, mu []float64) (sum, slope float64) {
	lo, hi := s.G.Row(i)
	for k := lo; k < hi; k++ {
		x, sl := s.respAt(k, z+mu[s.G.Col(i, k)])
		sum += x
		slope += sl
	}
	return sum, slope
}

// solveRow solves row i's equation in λ_i exactly (safeguarded Newton, at
// most inner steps) and returns the equation's violation at the incoming
// λ_i — this row's contribution to the staggered residual.
func (s *System) solveRow(i int, lambda, mu []float64, innerTol float64, inner int) (first float64) {
	z := lambda[i]
	var target, diag float64
	if s.Interval {
		sumIn, _ := s.rowEval(i, z, mu)
		first = intervalViolation(sumIn, s.RowLo[i], s.RowHi[i], z)
		sum0 := sumIn
		if z != 0 {
			sum0, _ = s.rowEval(i, 0, mu)
		}
		switch {
		case sum0 < s.RowLo[i]:
			target = s.RowLo[i]
		case sum0 > s.RowHi[i]:
			target = s.RowHi[i]
		default:
			lambda[i] = 0
			return first
		}
	} else {
		target = s.RowTarget[i]
		if s.RowDiag != nil {
			diag = s.RowDiag[i]
			if s.Coupled {
				target -= diag * mu[i]
			}
		}
	}
	blo, bhi := math.Inf(-1), math.Inf(1)
	if s.Interval {
		// Complementarity pins the sign: sum(0) below the lower bound means
		// λ* > 0, above the upper bound means λ* < 0.
		if target == s.RowLo[i] {
			blo = 0
		} else {
			bhi = 0
		}
	}
	step := 1.0
	for it := 0; it < inner; it++ {
		sum, slope := s.rowEval(i, z, mu)
		g := sum + diag*z - target
		if it == 0 && !s.Interval {
			first = math.Abs(g)
		}
		if math.Abs(g) <= innerTol {
			break
		}
		next, ok := newtonStep(z, g, slope+diag, &blo, &bhi, &step)
		if !ok {
			break
		}
		z = next
	}
	lambda[i] = z
	return first
}

// solveColumns runs the column half-sweep: batched passes accumulate every
// column's sum and interior slope row-major, then advance every unconverged
// μ_j one safeguarded Newton step, repeating until all column equations
// hold. Returns the worst violation of the first pass (the columns'
// staggered-residual contribution). In interval mode an initial pass also
// accumulates each column's sum at μ_j = 0 to choose the target side by
// complementarity.
func (s *System) solveColumns(lambda, mu []float64, innerTol float64, inner int) (first float64) {
	m, n := s.G.M, s.G.N
	for j := 0; j < n; j++ {
		s.bracketLo[j] = math.Inf(-1)
		s.bracketHi[j] = math.Inf(1)
		s.colActive[j] = true
	}
	if s.Interval {
		for j := 0; j < n; j++ {
			s.colSum[j] = 0
			s.colSum0[j] = 0
		}
		for i := 0; i < m; i++ {
			lo, hi := s.G.Row(i)
			for k := lo; k < hi; k++ {
				j := s.G.Col(i, k)
				x, _ := s.respAt(k, lambda[i]+mu[j])
				s.colSum[j] += x
				if mu[j] != 0 {
					x, _ = s.respAt(k, lambda[i])
				}
				s.colSum0[j] += x
			}
		}
		for j := 0; j < n; j++ {
			if v := intervalViolation(s.colSum[j], s.ColLo[j], s.ColHi[j], mu[j]); v > first {
				first = v
			}
			switch {
			case s.colSum0[j] < s.ColLo[j]:
				s.colTargetBuf[j] = s.ColLo[j]
				s.bracketLo[j] = 0
			case s.colSum0[j] > s.ColHi[j]:
				s.colTargetBuf[j] = s.ColHi[j]
				s.bracketHi[j] = 0
			default:
				mu[j] = 0
				s.colActive[j] = false
			}
			s.colDiagBuf[j] = 0
		}
	} else {
		for j := 0; j < n; j++ {
			if s.Coupled {
				s.colTargetBuf[j] = s.RowTarget[j] - s.RowDiag[j]*lambda[j]
				s.colDiagBuf[j] = s.RowDiag[j]
			} else {
				s.colTargetBuf[j] = s.ColTarget[j]
				if s.ColDiag != nil {
					s.colDiagBuf[j] = s.ColDiag[j]
				} else {
					s.colDiagBuf[j] = 0
				}
			}
		}
	}
	step := 1.0
	for pass := 0; pass < inner; pass++ {
		for j := 0; j < n; j++ {
			s.colSum[j] = 0
			s.colSlope[j] = 0
		}
		for i := 0; i < m; i++ {
			lo, hi := s.G.Row(i)
			for k := lo; k < hi; k++ {
				j := s.G.Col(i, k)
				x, sl := s.respAt(k, lambda[i]+mu[j])
				s.colSum[j] += x
				s.colSlope[j] += sl
			}
		}
		var worst float64
		moved := false
		for j := 0; j < n; j++ {
			if !s.colActive[j] {
				continue
			}
			g := s.colSum[j] + s.colDiagBuf[j]*mu[j] - s.colTargetBuf[j]
			if ag := math.Abs(g); ag > worst {
				worst = ag
			}
			if math.Abs(g) <= innerTol {
				continue
			}
			if next, ok := newtonStep(mu[j], g, s.colSlope[j]+s.colDiagBuf[j], &s.bracketLo[j], &s.bracketHi[j], &step); ok {
				mu[j] = next
				moved = true
			}
		}
		if pass == 0 && !s.Interval {
			first = worst
		}
		if worst <= innerTol || !moved {
			break
		}
	}
	return first
}

// Sweep performs one full row+column generalized-scaling sweep on (lambda,
// mu), updated in place, and returns the staggered residual: the largest
// equation violation measured at each equation's incoming multiplier — the
// ∞-norm of the dual gradient along the sweep.
func (s *System) Sweep(lambda, mu []float64, tol float64) float64 {
	n := s.G.N
	s.colSum = resize(s.colSum, n)
	s.colSlope = resize(s.colSlope, n)
	s.colSum0 = resize(s.colSum0, n)
	s.bracketLo = resize(s.bracketLo, n)
	s.bracketHi = resize(s.bracketHi, n)
	s.colTargetBuf = resize(s.colTargetBuf, n)
	s.colDiagBuf = resize(s.colDiagBuf, n)
	if cap(s.colActive) < n {
		s.colActive = make([]bool, n)
	}
	s.colActive = s.colActive[:n]
	innerTol := 0.0
	if tol > 0 {
		innerTol = tol / 4
	}
	var worst float64
	for i := 0; i < s.G.M; i++ {
		if r := s.solveRow(i, lambda, mu, innerTol, maxInner); r > worst {
			worst = r
		}
	}
	if r := s.solveColumns(lambda, mu, innerTol, maxInner); r > worst {
		worst = r
	}
	return worst
}

// Eval writes the primal x(λ,μ) into x (storage order) and the row/column
// sums into rowSum/colSum (length M/N), returning the largest equation
// violation at exactly these duals — the final residual a solver reports.
func (s *System) Eval(lambda, mu []float64, x, rowSum, colSum []float64) float64 {
	m, n := s.G.M, s.G.N
	for j := 0; j < n; j++ {
		colSum[j] = 0
	}
	for i := 0; i < m; i++ {
		lo, hi := s.G.Row(i)
		var sum float64
		for k := lo; k < hi; k++ {
			j := s.G.Col(i, k)
			xv, _ := s.respAt(k, lambda[i]+mu[j])
			x[k] = xv
			sum += xv
			colSum[j] += xv
		}
		rowSum[i] = sum
	}
	var worst float64
	for i := 0; i < m; i++ {
		var r float64
		if s.Interval {
			r = intervalViolation(rowSum[i], s.RowLo[i], s.RowHi[i], lambda[i])
		} else {
			target, diag := s.RowTarget[i], 0.0
			if s.RowDiag != nil {
				diag = s.RowDiag[i]
				if s.Coupled {
					target -= diag * mu[i]
				}
			}
			r = math.Abs(rowSum[i] + diag*lambda[i] - target)
		}
		if r > worst {
			worst = r
		}
	}
	for j := 0; j < n; j++ {
		var r float64
		switch {
		case s.Interval:
			r = intervalViolation(colSum[j], s.ColLo[j], s.ColHi[j], mu[j])
		case s.Coupled:
			r = math.Abs(colSum[j] + s.RowDiag[j]*mu[j] - (s.RowTarget[j] - s.RowDiag[j]*lambda[j]))
		default:
			target, diag := s.ColTarget[j], 0.0
			if s.ColDiag != nil {
				diag = s.ColDiag[j]
			}
			r = math.Abs(colSum[j] + diag*mu[j] - target)
		}
		if r > worst {
			worst = r
		}
	}
	return worst
}

func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// NewSystem builds the multiplicative dual system of a diagonal problem
// under the entropy objective, checking the KL domain: the prior must be
// nonnegative, positive lower bounds need positive prior cells, and a
// zero-support row or column cannot meet a strictly positive required total
// (its entries are pinned at zero by the KL term).
func NewSystem(p *core.DiagonalProblem) (*System, error) {
	var g scale.Matrix
	if p.Pattern != nil {
		g = scale.CSR(p.M, p.N, p.Gamma, p.Pattern.RowPtr, p.Pattern.ColIdx)
	} else {
		g = scale.Dense(p.M, p.N, p.Gamma)
	}
	for k, v := range p.X0 {
		if v < 0 {
			return nil, fmt.Errorf("%w: X0[%d] = %g < 0 (the KL divergence needs a nonnegative prior)", ErrDomain, k, v)
		}
		if v == 0 && p.Lower != nil && p.Lower[k] > 0 {
			return nil, fmt.Errorf("%w: Lower[%d] = %g > 0 over a zero prior cell (KL pins it at 0)", ErrDomain, k, p.Lower[k])
		}
	}
	// Zero-support structure: a row/column whose stored prior is all zero
	// sums to zero for every dual, so a strictly positive required total is
	// unreachable.
	rowHasMass := make([]bool, p.M)
	colHasMass := make([]bool, p.N)
	for i := 0; i < p.M; i++ {
		lo, hi := g.Row(i)
		for k := lo; k < hi; k++ {
			if p.X0[k] > 0 {
				rowHasMass[i] = true
				colHasMass[g.Col(i, k)] = true
			}
		}
	}
	needRow := func(i int) float64 {
		switch p.Kind {
		case core.FixedTotals:
			return p.S0[i]
		case core.IntervalTotals:
			return p.SLo[i]
		}
		return 0
	}
	needCol := func(j int) float64 {
		switch p.Kind {
		case core.FixedTotals:
			return p.D0[j]
		case core.IntervalTotals:
			return p.DLo[j]
		}
		return 0
	}
	for i := 0; i < p.M; i++ {
		if !rowHasMass[i] && needRow(i) > 0 {
			return nil, fmt.Errorf("%w: row %d has zero prior support but requires total %g under the entropy objective", core.ErrInfeasible, i, needRow(i))
		}
	}
	for j := 0; j < p.N; j++ {
		if !colHasMass[j] && needCol(j) > 0 {
			return nil, fmt.Errorf("%w: column %d has zero prior support but requires total %g under the entropy objective", core.ErrInfeasible, j, needCol(j))
		}
	}

	sys := &System{G: g, X0: p.X0, Lo: p.Lower, Up: p.Upper}
	halfInv := func(w []float64) []float64 {
		out := make([]float64, len(w))
		for i, v := range w {
			out[i] = 0.5 / v
		}
		return out
	}
	switch p.Kind {
	case core.FixedTotals:
		sys.RowTarget, sys.ColTarget = p.S0, p.D0
	case core.ElasticTotals:
		sys.RowTarget, sys.ColTarget = p.S0, p.D0
		sys.RowDiag = halfInv(p.Alpha)
		sys.ColDiag = halfInv(p.Beta)
	case core.Balanced:
		sys.RowTarget = p.S0
		sys.RowDiag = halfInv(p.Alpha)
		sys.Coupled = true
	case core.IntervalTotals:
		sys.Interval = true
		sys.RowLo, sys.RowHi = p.SLo, p.SHi
		sys.ColLo, sys.ColHi = p.DLo, p.DHi
	default:
		return nil, fmt.Errorf("entropy: unknown Kind %d", p.Kind)
	}
	return sys, nil
}

// Solve runs the entropy solver as a registry solver: validate the problem
// and the KL domain, sweep the multiplicative system until the staggered
// residual reaches Epsilon, and package the duals into a Solution whose
// Objective is the KL value (ObjectiveKind = ObjectiveEntropy). Options
// supply Epsilon (absolute residual tolerance), MaxIterations, Mu0 (dual
// warm start of the column multipliers), Trace and Counters; cancellation
// is observed between sweeps. Procs is ignored: sweeps are serial and
// bit-identical at any setting.
func Solve(ctx context.Context, p *core.DiagonalProblem, opts *core.Options) (*core.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := fillOpts(opts)
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sys, err := NewSystem(p)
	if err != nil {
		return nil, err
	}
	lambda := make([]float64, p.M)
	mu := make([]float64, p.N)
	if o.Mu0 != nil {
		copy(mu, o.Mu0)
	}
	nnz := int64(sys.G.Nnz())
	converged := false
	iters := 0
	var residual float64
	var cancelErr error
	for t := 1; t <= o.MaxIterations; t++ {
		residual = sys.Sweep(lambda, mu, o.Epsilon)
		iters = t
		observeSweep(o, t, residual, 2*nnz)
		if residual <= o.Epsilon {
			converged = true
			break
		}
		if err := ctx.Err(); err != nil {
			cancelErr = err
			break
		}
	}
	sol := assemble(p, sys, lambda, mu, iters, converged)
	if cancelErr != nil {
		sol.Status = core.StatusCancelled
		return sol, cancelErr
	}
	if !converged {
		return sol, fmt.Errorf("%w: entropy after %d sweeps (residual %g)", core.ErrNotConverged, iters, residual)
	}
	return sol, nil
}

// package_ materializes the primal from the duals and assembles the
// Solution: the totals follow each kind's dual relations (the elastic ones
// are the quadratic family's, since the penalties are shared), and the
// objective is the KL value.
func assemble(p *core.DiagonalProblem, sys *System, lambda, mu []float64, iters int, converged bool) *core.Solution {
	x := make([]float64, len(p.X0))
	rowSum := make([]float64, p.M)
	colSum := make([]float64, p.N)
	worst := sys.Eval(lambda, mu, x, rowSum, colSum)
	s := make([]float64, p.M)
	d := make([]float64, p.N)
	switch p.Kind {
	case core.FixedTotals:
		copy(s, p.S0)
		copy(d, p.D0)
	case core.ElasticTotals:
		for i := range s {
			s[i] = p.S0[i] - 0.5/p.Alpha[i]*lambda[i]
		}
		for j := range d {
			d[j] = p.D0[j] - 0.5/p.Beta[j]*mu[j]
		}
	case core.Balanced:
		for i := range s {
			s[i] = p.S0[i] - 0.5/p.Alpha[i]*(lambda[i]+mu[i])
		}
		copy(d, s)
	case core.IntervalTotals:
		copy(s, rowSum)
		copy(d, colSum)
	}
	sol := &core.Solution{
		X: x, S: s, D: d,
		Lambda: mat.Clone(lambda), Mu: mat.Clone(mu),
		Iterations:    iters,
		Converged:     converged,
		Residual:      worst,
		Objective:     p.KLObjective(x, s, d),
		ObjectiveKind: core.ObjectiveEntropy,
		DualValue:     math.NaN(),
	}
	if converged {
		sol.Status = core.StatusConverged
	} else {
		sol.Status = core.StatusMaxIterations
	}
	return sol
}

// observeSweep forwards one sweep to the counters and the trace observer,
// following the scaling solvers' event shape: every sweep checks
// convergence, and the whole sweep is serial work.
func observeSweep(o *core.Options, iter int, residual float64, ops int64) {
	if o.Counters != nil {
		o.Counters.Iterations.Add(1)
		o.Counters.ConvChecks.Add(1)
		o.Counters.SerialOps.Add(ops)
	}
	if o.Trace != nil {
		o.Trace.ObserveIteration(trace.Event{
			Solver:    "entropy",
			Iteration: iter,
			Checked:   true,
			Residual:  residual,
			SerialOps: ops,
		})
	}
}

func fillOpts(o *core.Options) *core.Options {
	if o == nil {
		return core.DefaultOptions()
	}
	out := *o
	if out.Epsilon <= 0 {
		out.Epsilon = 1e-3
	}
	if out.MaxIterations <= 0 {
		out.MaxIterations = 100000
	}
	if out.Trace != nil && out.Counters == nil {
		out.Counters = &metrics.Counters{}
	}
	return &out
}
