package entropy

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"sea/internal/baseline"
	"sea/internal/core"
)

// randFixed builds a feasible fixed-totals problem with a strictly positive
// prior and a mild growth factor on the targets.
func randFixed(rng *rand.Rand, m, n int, growth float64) *core.DiagonalProblem {
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = 0.5 + rng.Float64()*10
		gamma[k] = 0.5 + rng.Float64()
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += growth * x0[i*n+j]
			d0[j] += growth * x0[i*n+j]
		}
	}
	p, err := core.NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		panic(err)
	}
	return p
}

func randElastic(rng *rand.Rand, m, n int) *core.DiagonalProblem {
	f := randFixed(rng, m, n, 1.2)
	alpha := make([]float64, m)
	beta := make([]float64, n)
	for i := range alpha {
		alpha[i] = 0.5 + rng.Float64()
	}
	for j := range beta {
		beta[j] = 0.5 + rng.Float64()
	}
	p, err := core.NewElastic(m, n, f.X0, f.Gamma, f.S0, alpha, f.D0, beta)
	if err != nil {
		panic(err)
	}
	return p
}

func randBalanced(rng *rand.Rand, n int) *core.DiagonalProblem {
	f := randFixed(rng, n, n, 1.15)
	alpha := make([]float64, n)
	for i := range alpha {
		alpha[i] = 0.5 + rng.Float64()
	}
	p, err := core.NewBalanced(n, f.X0, f.Gamma, f.S0, alpha)
	if err != nil {
		panic(err)
	}
	return p
}

func randInterval(rng *rand.Rand, m, n int) *core.DiagonalProblem {
	f := randFixed(rng, m, n, 1.0)
	slo := make([]float64, m)
	shi := make([]float64, m)
	dlo := make([]float64, n)
	dhi := make([]float64, n)
	for i := range slo {
		c := f.S0[i] * (1.05 + 0.4*rng.Float64())
		slo[i] = c * 0.95
		shi[i] = c * 1.05
	}
	var totLo, totHi float64
	for i := range slo {
		totLo += slo[i]
		totHi += shi[i]
	}
	for j := range dlo {
		dlo[j] = totLo / float64(n) * 0.5
		dhi[j] = totHi / float64(n) * 1.5
	}
	p, err := core.NewInterval(m, n, f.X0, f.Gamma, slo, shi, dlo, dhi)
	if err != nil {
		panic(err)
	}
	return p
}

// toCSR rebuilds a dense problem on a full CSR pattern (same data, sparse
// storage) so dense/CSR agreement can be checked cell for cell.
func toCSR(t *testing.T, p *core.DiagonalProblem) *core.DiagonalProblem {
	t.Helper()
	rows := make([]int, 0, p.M*p.N)
	cols := make([]int, 0, p.M*p.N)
	for i := 0; i < p.M; i++ {
		for j := 0; j < p.N; j++ {
			rows = append(rows, i)
			cols = append(cols, j)
		}
	}
	pt, err := core.NewPatternFromTriplets(p.M, p.N, rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	q := *p
	q.Pattern = pt
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	return &q
}

func solveTight(t *testing.T, p *core.DiagonalProblem, o *core.Options) *core.Solution {
	t.Helper()
	if o == nil {
		o = core.DefaultOptions()
		o.Epsilon = 1e-10
		o.MaxIterations = 200000
	}
	sol, err := Solve(context.Background(), p, o)
	if err != nil {
		t.Fatalf("entropy solve: %v", err)
	}
	if !sol.Converged || sol.Status != core.StatusConverged {
		t.Fatalf("entropy solve did not converge: %+v", sol.Status)
	}
	return sol
}

// TestEntropyKKTAllKinds: the entropy solution of every constraint kind, in
// both storage layouts, satisfies the entropy-family KKT conditions to 1e-6 —
// the solver-independent optimality certificate.
func TestEntropyKKTAllKinds(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	cases := []struct {
		name string
		p    *core.DiagonalProblem
	}{
		{"fixed", randFixed(rng, 7, 5, 1.3)},
		{"elastic", randElastic(rng, 6, 8)},
		{"balanced", randBalanced(rng, 6)},
		{"interval", randInterval(rng, 5, 6)},
	}
	for _, tc := range cases {
		for _, sparse := range []bool{false, true} {
			name := tc.name + "/dense"
			p := tc.p
			if sparse {
				name = tc.name + "/csr"
				p = toCSR(t, tc.p)
			}
			t.Run(name, func(t *testing.T) {
				sol := solveTight(t, p, nil)
				rep := core.CheckKKTObjective(p, sol, core.ObjectiveEntropy)
				if !rep.Satisfied(1e-6) {
					t.Fatalf("entropy KKT violated: %+v", rep)
				}
				if sol.ObjectiveKind != core.ObjectiveEntropy {
					t.Fatalf("ObjectiveKind = %v, want entropy", sol.ObjectiveKind)
				}
				if math.IsNaN(sol.Objective) || math.IsInf(sol.Objective, 0) {
					t.Fatalf("KL objective = %g", sol.Objective)
				}
			})
		}
	}
}

// TestEntropyDeterministicAcrossProcs: sweeps are serial by construction, so
// any Procs setting must produce bit-identical solutions; the same holds for
// dense versus full-pattern CSR storage of the same data.
func TestEntropyDeterministicAcrossProcs(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	p := randFixed(rng, 9, 7, 1.25)
	base := solveTight(t, p, nil)
	for _, procs := range []int{1, 2, 7, 16} {
		o := core.DefaultOptions()
		o.Epsilon = 1e-10
		o.MaxIterations = 200000
		o.Procs = procs
		sol := solveTight(t, p, o)
		for k := range base.X {
			if sol.X[k] != base.X[k] {
				t.Fatalf("procs=%d: X[%d] = %v, want bit-identical %v", procs, k, sol.X[k], base.X[k])
			}
		}
		for i := range base.Lambda {
			if sol.Lambda[i] != base.Lambda[i] {
				t.Fatalf("procs=%d: Lambda[%d] differs", procs, i)
			}
		}
		for j := range base.Mu {
			if sol.Mu[j] != base.Mu[j] {
				t.Fatalf("procs=%d: Mu[%d] differs", procs, j)
			}
		}
	}
	csr := solveTight(t, toCSR(t, p), nil)
	for k := range base.X {
		if csr.X[k] != base.X[k] {
			t.Fatalf("csr: X[%d] = %v, want bit-identical %v", k, csr.X[k], base.X[k])
		}
	}
}

// TestEntropyMatchesSinkhorn: with fixed totals, uniform weights, a positive
// prior and no binding bounds, the KL projection is exactly the
// biproportional (Sinkhorn/RAS) limit — two very different algorithms, one
// optimum.
func TestEntropyMatchesSinkhorn(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 5))
	p := randFixed(rng, 8, 6, 1.3)
	for k := range p.Gamma {
		p.Gamma[k] = 1 // Sinkhorn solves the unweighted KL projection only
	}
	o := core.DefaultOptions()
	o.Epsilon = 1e-11
	o.MaxIterations = 500000
	ent := solveTight(t, p, o)
	sk, err := baseline.SolveSinkhorn(context.Background(), p, o)
	if err != nil {
		t.Fatalf("sinkhorn: %v", err)
	}
	for k := range ent.X {
		if d := math.Abs(ent.X[k] - sk.X[k]); d > 1e-6*(1+math.Abs(sk.X[k])) {
			t.Fatalf("X[%d]: entropy %g vs sinkhorn %g", k, ent.X[k], sk.X[k])
		}
	}
}

// TestEntropyUniformPriorClosedForm: a uniform prior with uniform weights and
// fixed totals has the rank-1 closed-form KL optimum x_ij = s_i·d_j/T
// (Oikonomou's most-likely-matrix solution).
func TestEntropyUniformPriorClosedForm(t *testing.T) {
	m, n := 6, 4
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = 1
		gamma[k] = 1
	}
	s0 := []float64{3, 5, 2, 7, 4, 9}
	total := 0.0
	for _, v := range s0 {
		total += v
	}
	d0 := []float64{total * 0.4, total * 0.3, total * 0.2, total * 0.1}
	p, err := core.NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		t.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Epsilon = 1e-12
	o.MaxIterations = 500000
	sol := solveTight(t, p, o)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			want := s0[i] * d0[j] / total
			if got := sol.X[i*n+j]; math.Abs(got-want) > 1e-8*(1+want) {
				t.Fatalf("X[%d,%d] = %g, want rank-1 %g", i, j, got, want)
			}
		}
	}
}

// TestEntropyIntervalComplementarity: prior sums strictly inside every
// interval mean the prior itself is optimal — zero multipliers, x = x⁰; a
// shifted interval forces the corresponding bound to bind exactly.
func TestEntropyIntervalComplementarity(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	m, n := 4, 5
	f := randFixed(rng, m, n, 1.0)
	slack := func(v float64) (lo, hi float64) { return v * 0.9, v * 1.1 }
	slo := make([]float64, m)
	shi := make([]float64, m)
	dlo := make([]float64, n)
	dhi := make([]float64, n)
	for i := range slo {
		slo[i], shi[i] = slack(f.S0[i])
	}
	for j := range dlo {
		dlo[j], dhi[j] = slack(f.D0[j])
	}
	p, err := core.NewInterval(m, n, f.X0, f.Gamma, slo, shi, dlo, dhi)
	if err != nil {
		t.Fatal(err)
	}
	sol := solveTight(t, p, nil)
	for k := range sol.X {
		if math.Abs(sol.X[k]-p.X0[k]) > 1e-9*(1+p.X0[k]) {
			t.Fatalf("interior intervals: X[%d] = %g, want the prior %g", k, sol.X[k], p.X0[k])
		}
	}
	for i := range sol.Lambda {
		if sol.Lambda[i] != 0 {
			t.Fatalf("interior intervals: Lambda[%d] = %g, want 0", i, sol.Lambda[i])
		}
	}

	// Push row 0's interval above the prior mass: its lower bound must bind.
	shifted := append([]float64(nil), slo...)
	shiftedHi := append([]float64(nil), shi...)
	shifted[0] = f.S0[0] * 1.3
	shiftedHi[0] = f.S0[0] * 1.4
	p2, err := core.NewInterval(m, n, f.X0, f.Gamma, shifted, shiftedHi, dlo, dhi)
	if err != nil {
		t.Fatal(err)
	}
	sol2 := solveTight(t, p2, nil)
	var row0 float64
	for j := 0; j < n; j++ {
		row0 += sol2.X[j]
	}
	if math.Abs(row0-shifted[0]) > 1e-6*(1+shifted[0]) {
		t.Fatalf("binding interval: row 0 sum %g, want lower bound %g", row0, shifted[0])
	}
	if sol2.Lambda[0] <= 0 {
		t.Fatalf("binding lower bound: Lambda[0] = %g, want > 0", sol2.Lambda[0])
	}
	rep := core.CheckKKTObjective(p2, sol2, core.ObjectiveEntropy)
	if !rep.Satisfied(1e-6) {
		t.Fatalf("binding interval KKT violated: %+v", rep)
	}
}

// TestEntropyRespectsBounds: box bounds clamp the exponential response and
// the clamped solution still certifies via entropy KKT.
func TestEntropyRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	p := randFixed(rng, 6, 6, 1.35)
	upper := make([]float64, len(p.X0))
	lower := make([]float64, len(p.X0))
	for i := 0; i < p.M; i++ {
		for j := 0; j < p.N; j++ {
			k := i*p.N + j
			// Checkerboard caps: growth 1.35 binds the tight cells, and every
			// row and column keeps wide cells so the totals stay reachable.
			if (i+j)%2 == 0 {
				upper[k] = p.X0[k] * 1.25
			} else {
				upper[k] = p.X0[k] * 10
			}
			lower[k] = p.X0[k] * 0.1
		}
	}
	p.Upper, p.Lower = upper, lower
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sol := solveTight(t, p, nil)
	for k := range sol.X {
		if sol.X[k] < lower[k]-1e-12 || sol.X[k] > upper[k]+1e-12 {
			t.Fatalf("X[%d] = %g outside [%g, %g]", k, sol.X[k], lower[k], upper[k])
		}
	}
	rep := core.CheckKKTObjective(p, sol, core.ObjectiveEntropy)
	if !rep.Satisfied(1e-6) {
		t.Fatalf("bounded entropy KKT violated: %+v", rep)
	}
}

// TestEntropyDomainErrors: data outside the KL domain fails fast with
// ErrDomain; structurally unreachable totals fail with ErrInfeasible.
func TestEntropyDomainErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	t.Run("negative prior", func(t *testing.T) {
		p := randFixed(rng, 3, 3, 1.1)
		p.X0[4] = -1
		_, err := NewSystem(p)
		if !errors.Is(err, ErrDomain) {
			t.Fatalf("err = %v, want ErrDomain", err)
		}
	})
	t.Run("positive lower bound over zero prior", func(t *testing.T) {
		p := randFixed(rng, 3, 3, 1.1)
		p.X0[4] = 0
		lower := make([]float64, len(p.X0))
		lower[4] = 0.5
		p.Lower = lower
		_, err := NewSystem(p)
		if !errors.Is(err, ErrDomain) {
			t.Fatalf("err = %v, want ErrDomain", err)
		}
	})
	t.Run("zero-support row with positive total", func(t *testing.T) {
		p := randFixed(rng, 3, 3, 1.0)
		for j := 0; j < 3; j++ {
			p.X0[j] = 0 // row 0 loses all prior mass; S0[0] stays positive
		}
		_, err := NewSystem(p)
		if !errors.Is(err, core.ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible", err)
		}
	})
}

// TestEntropyWarmStartMu0: seeding the column duals with the converged Mu
// re-converges in far fewer sweeps and lands on the same optimum.
func TestEntropyWarmStartMu0(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 64))
	p := randFixed(rng, 10, 8, 1.3)
	o := core.DefaultOptions()
	o.Epsilon = 1e-10
	o.MaxIterations = 200000
	cold := solveTight(t, p, o)

	warm := core.DefaultOptions()
	warm.Epsilon = 1e-10
	warm.MaxIterations = 200000
	warm.Mu0 = cold.Mu
	hot := solveTight(t, p, warm)
	if hot.Iterations > cold.Iterations {
		t.Fatalf("warm start took %d sweeps, cold %d", hot.Iterations, cold.Iterations)
	}
	for k := range cold.X {
		if math.Abs(hot.X[k]-cold.X[k]) > 1e-8*(1+math.Abs(cold.X[k])) {
			t.Fatalf("warm start moved the optimum at %d: %g vs %g", k, hot.X[k], cold.X[k])
		}
	}
}

// TestEntropyCancellation: a context cancelled between sweeps surfaces as
// ctx.Err() with the partial iterate stamped StatusCancelled.
func TestEntropyCancellation(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	p := randFixed(rng, 30, 30, 1.5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	o := core.DefaultOptions()
	o.Epsilon = 1e-300
	o.MaxIterations = 1 << 30
	sol, err := Solve(ctx, p, o)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sol == nil || sol.Status != core.StatusCancelled {
		t.Fatalf("sol = %+v, want StatusCancelled", sol)
	}
}
