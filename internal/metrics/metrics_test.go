package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersConcurrent(t *testing.T) {
	var c Counters
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Equilibrations.Add(1)
				c.Ops.Add(3)
			}
		}()
	}
	wg.Wait()
	s := c.Snapshot()
	if s.Equilibrations != 8000 {
		t.Errorf("Equilibrations = %d, want 8000", s.Equilibrations)
	}
	if s.Ops != 24000 {
		t.Errorf("Ops = %d, want 24000", s.Ops)
	}
}

func TestReset(t *testing.T) {
	var c Counters
	c.Iterations.Add(5)
	c.OuterIterations.Add(2)
	c.SerialOps.Add(9)
	c.ConvChecks.Add(1)
	c.Reset()
	s := c.Snapshot()
	if s != (Snapshot{}) {
		t.Errorf("Reset left %+v", s)
	}
}

func TestSnapshotString(t *testing.T) {
	var c Counters
	c.Iterations.Add(3)
	if got := c.Snapshot().String(); !strings.Contains(got, "iter=3") {
		t.Errorf("String() = %q", got)
	}
}

func TestStopwatch(t *testing.T) {
	sw := NewStopwatch()
	sw.Add("row", 2*time.Millisecond)
	sw.Add("row", 3*time.Millisecond)
	if got := sw.Get("row"); got != 5*time.Millisecond {
		t.Errorf("Get(row) = %v, want 5ms", got)
	}
	sw.Time("col", func() { time.Sleep(time.Millisecond) })
	if got := sw.Get("col"); got < time.Millisecond {
		t.Errorf("Time(col) recorded %v, want >= 1ms", got)
	}
	phases := sw.Phases()
	if len(phases) != 2 {
		t.Errorf("Phases() has %d entries, want 2", len(phases))
	}
	phases["row"] = 0 // mutating the copy must not affect the stopwatch
	if sw.Get("row") != 5*time.Millisecond {
		t.Error("Phases() returned a live reference")
	}
}

func TestStopwatchConcurrent(t *testing.T) {
	sw := NewStopwatch()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sw.Add("p", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := sw.Get("p"); got != 400*time.Microsecond {
		t.Errorf("concurrent Add total = %v, want 400µs", got)
	}
}
