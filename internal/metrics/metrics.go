// Package metrics collects the instrumentation the experiments need:
// iteration counters, abstract operation counts (the paper's complexity
// model charges each exact equilibration 7n + n·ln n + 2n operations), and
// wall-clock phase timings. Counters are safe for concurrent increment so
// the parallel row/column phases can record per-task costs.
package metrics

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Counters accumulates the quantities every experiment reports.
type Counters struct {
	OuterIterations atomic.Int64 // projection-method iterations (general problems)
	Iterations      atomic.Int64 // row+column dual ascent sweeps (diagonal problems)
	Equilibrations  atomic.Int64 // single row/column exact equilibrations performed
	Ops             atomic.Int64 // abstract operations, per the paper's model
	SerialOps       atomic.Int64 // operations in serial phases (convergence checks)
	ConvChecks      atomic.Int64 // convergence verifications performed
}

// Snapshot is an immutable copy of Counters suitable for reporting.
type Snapshot struct {
	OuterIterations int64
	Iterations      int64
	Equilibrations  int64
	Ops             int64
	SerialOps       int64
	ConvChecks      int64
}

// Snapshot returns a copy of the current counter values.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		OuterIterations: c.OuterIterations.Load(),
		Iterations:      c.Iterations.Load(),
		Equilibrations:  c.Equilibrations.Load(),
		Ops:             c.Ops.Load(),
		SerialOps:       c.SerialOps.Load(),
		ConvChecks:      c.ConvChecks.Load(),
	}
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	c.OuterIterations.Store(0)
	c.Iterations.Store(0)
	c.Equilibrations.Store(0)
	c.Ops.Store(0)
	c.SerialOps.Store(0)
	c.ConvChecks.Store(0)
}

// Add returns the field-wise sum of two snapshots (shard-merged stats).
func (s Snapshot) Add(o Snapshot) Snapshot {
	return Snapshot{
		OuterIterations: s.OuterIterations + o.OuterIterations,
		Iterations:      s.Iterations + o.Iterations,
		Equilibrations:  s.Equilibrations + o.Equilibrations,
		Ops:             s.Ops + o.Ops,
		SerialOps:       s.SerialOps + o.SerialOps,
		ConvChecks:      s.ConvChecks + o.ConvChecks,
	}
}

func (s Snapshot) String() string {
	return fmt.Sprintf("outer=%d iter=%d equil=%d ops=%d serialOps=%d checks=%d",
		s.OuterIterations, s.Iterations, s.Equilibrations, s.Ops, s.SerialOps, s.ConvChecks)
}

// Stopwatch accumulates named wall-clock phase durations. Safe for
// concurrent use.
type Stopwatch struct {
	mu     sync.Mutex
	phases map[string]time.Duration
}

// NewStopwatch returns an empty Stopwatch.
func NewStopwatch() *Stopwatch {
	return &Stopwatch{phases: make(map[string]time.Duration)}
}

// Add accumulates d into the named phase.
func (s *Stopwatch) Add(phase string, d time.Duration) {
	s.mu.Lock()
	s.phases[phase] += d
	s.mu.Unlock()
}

// Time runs fn and accumulates its duration into the named phase.
func (s *Stopwatch) Time(phase string, fn func()) {
	start := time.Now()
	fn()
	s.Add(phase, time.Since(start))
}

// Get returns the accumulated duration for a phase.
func (s *Stopwatch) Get(phase string) time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.phases[phase]
}

// Phases returns a copy of all phase durations.
func (s *Stopwatch) Phases() map[string]time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]time.Duration, len(s.phases))
	for k, v := range s.phases {
		out[k] = v
	}
	return out
}
