package metrics

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Gauge is a concurrent level indicator with a high-water mark — queue
// depth, in-flight solves. Inc/Dec are safe from any goroutine; the
// high-water mark is maintained with a CAS loop so it never undercounts.
type Gauge struct {
	cur, high atomic.Int64
}

// Inc raises the level by one and returns the new value.
func (g *Gauge) Inc() int64 {
	v := g.cur.Add(1)
	for {
		h := g.high.Load()
		if v <= h || g.high.CompareAndSwap(h, v) {
			return v
		}
	}
}

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.cur.Add(-1) }

// Level returns the current level.
func (g *Gauge) Level() int64 { return g.cur.Load() }

// High returns the high-water mark.
func (g *Gauge) High() int64 { return g.high.Load() }

// Latency accumulates duration observations — count, sum, and maximum —
// without locks, so the serving layer can record per-request solve and
// queue-wait times from many goroutines at once.
type Latency struct {
	count, sum, max atomic.Int64
}

// Observe records one duration.
func (l *Latency) Observe(d time.Duration) {
	ns := int64(d)
	l.count.Add(1)
	l.sum.Add(ns)
	for {
		m := l.max.Load()
		if ns <= m || l.max.CompareAndSwap(m, ns) {
			return
		}
	}
}

// LatencySnapshot is an immutable copy of a Latency's aggregates.
type LatencySnapshot struct {
	Count int64
	Mean  time.Duration
	Max   time.Duration
}

// Snapshot returns the current aggregates.
func (l *Latency) Snapshot() LatencySnapshot {
	s := LatencySnapshot{Count: l.count.Load(), Max: time.Duration(l.max.Load())}
	if s.Count > 0 {
		s.Mean = time.Duration(l.sum.Load() / s.Count)
	}
	return s
}

func (s LatencySnapshot) String() string {
	return fmt.Sprintf("n=%d mean=%s max=%s", s.Count, s.Mean, s.Max)
}

// Merge combines two snapshots: counts add, means combine count-weighted,
// and the maximum wins — the aggregation a sharded server's merged view
// needs.
func (s LatencySnapshot) Merge(o LatencySnapshot) LatencySnapshot {
	out := LatencySnapshot{Count: s.Count + o.Count, Max: s.Max}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	if out.Count > 0 {
		total := int64(s.Mean)*s.Count + int64(o.Mean)*o.Count
		out.Mean = time.Duration(total / out.Count)
	}
	return out
}
