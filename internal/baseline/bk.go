package baseline

import (
	"context"
	"fmt"
	"math"
	"time"

	"sea/internal/core"
	"sea/internal/mat"
	"sea/internal/metrics"
	"sea/internal/trace"
)

// SolveBK implements the Bachem–Korte (1978) style primal method for
// quadratic optimization over transportation polytopes — the second baseline
// of the paper's Table 7.
//
// The method works directly on the transportation polytope: starting from a
// feasible point, it cyclically sweeps the elementary cycles (i,j,i′,j′) —
// the +/− adjustments x_ij, x_i′j′ up, x_ij′, x_i′j down that preserve all
// row and column totals — performing an exact line search of the quadratic
// objective along each cycle, clipped to the nonnegativity (and optional
// upper) bounds. Every iterate is feasible; the sweep repeats until no cycle
// moves more than ε.
//
// For a dense G each accepted move requires updating the dense gradient
// (four columns of G), so a sweep costs O(m²n²·mn) — the reason the paper
// found B-K prohibitively expensive beyond G = 900×900 while SEA and RC,
// which never touch G more than once per projection step, kept scaling.
//
// The 1978 report's exact pivoting rules are not available (the companion
// implementation reference is Nagurney–Kim–Robinson (1990)); this
// elementary-cycle coordinate-descent realization preserves the method's
// class (primal, feasible, cycle-space, strictly serial) and its asymptotic
// cost, which is what Table 7 measures. See DESIGN.md, substitution 3.
// Cancellation is observed between the row blocks of a sweep (a full sweep
// is O(m²n²) line searches, far too long a unit): when ctx is cancelled the
// solve returns the current — always feasible — iterate with ctx.Err().
// A nil ctx means context.Background. Trace receives one event per sweep.
func SolveBK(ctx context.Context, p *core.GeneralProblem, opts *core.Options) (*core.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := fillOpts(opts)
	if p.Kind != core.FixedTotals {
		return nil, fmt.Errorf("baseline: B-K supports fixed totals only, got %v", p.Kind)
	}
	if err := p.Validate(true); err != nil {
		return nil, err
	}
	m, n := p.M, p.N
	mn := m * n

	x, _, _ := p.FeasibleStart()

	// Dense gradient g = 2G(x−x⁰), maintained incrementally.
	dev := make([]float64, mn)
	for k := range dev {
		dev[k] = x[k] - p.X0[k]
	}
	g := make([]float64, mn)
	p.G.MulVec(g, dev)
	mat.Scale(2, g)
	if o.Counters != nil {
		o.Counters.Ops.Add(int64(mn) * int64(mn))
	}

	_, diagG := p.G.(*mat.Diagonal)
	grow := make([]float64, mn) // scratch for dense gradient updates

	obs := o.Trace
	var prevSnap metrics.Snapshot
	if obs != nil {
		prevSnap = o.Counters.Snapshot()
	}
	sol := &core.Solution{}
	for sweep := 1; sweep <= o.MaxIterations; sweep++ {
		sol.Iterations = sweep
		var mark time.Time
		if obs != nil {
			mark = time.Now()
		}
		var maxMove float64
		for i := 0; i < m-1; i++ {
			if err := ctx.Err(); err != nil {
				finishBK(sol, p, x)
				return sol, err
			}
			for i2 := i + 1; i2 < m; i2++ {
				for j := 0; j < n-1; j++ {
					for j2 := j + 1; j2 < n; j2++ {
						theta := bkMove(p, x, g, grow, diagG, i, i2, j, j2, o.Counters)
						if a := math.Abs(theta); a > maxMove {
							maxMove = a
						}
					}
				}
			}
		}
		if o.Counters != nil {
			o.Counters.Iterations.Add(1)
		}
		sol.Residual = maxMove
		if obs != nil {
			ev := trace.Event{
				Solver: "bk", Iteration: sweep, Checked: true,
				Residual: maxMove, RowPhase: time.Since(mark),
			}
			snap := o.Counters.Snapshot()
			ev.Ops = snap.Ops - prevSnap.Ops
			prevSnap = snap
			obs.ObserveIteration(ev)
		}
		if maxMove <= o.Epsilon {
			sol.Converged = true
			break
		}
	}

	finishBK(sol, p, x)
	if !sol.Converged {
		return sol, fmt.Errorf("%w: B-K after %d sweeps (max move %g)", core.ErrNotConverged, o.MaxIterations, sol.Residual)
	}
	return sol, nil
}

// finishBK fills sol with the current (feasible) iterate and its objective.
func finishBK(sol *core.Solution, p *core.GeneralProblem, x []float64) {
	sol.X = x
	sol.S = mat.Clone(p.S0)
	sol.D = mat.Clone(p.D0)
	sol.Objective = p.Objective(x, sol.S, sol.D)
	sol.DualValue = math.NaN()
}

// bkMove performs the exact clipped line search along the elementary cycle
// (+1 at (i,j) and (i2,j2); −1 at (i,j2) and (i2,j)) and applies the move.
// It returns the step taken (0 if the cycle is already optimal or blocked).
func bkMove(p *core.GeneralProblem, x, g, grow []float64, diagG bool, i, i2, j, j2 int, counters *metrics.Counters) float64 {
	n := p.N
	kpp := i*n + j   // +θ
	kpm := i*n + j2  // −θ
	kmp := i2*n + j  // −θ
	kmm := i2*n + j2 // +θ

	// Directional derivative and curvature along d.
	gd := g[kpp] - g[kpm] - g[kmp] + g[kmm]
	// dᵀ(2G)d expanded over the four support entries of d.
	ks := [4]int{kpp, kpm, kmp, kmm}
	sg := [4]float64{1, -1, -1, 1}
	var curv float64
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			curv += sg[a] * sg[b] * p.G.At(ks[a], ks[b])
		}
	}
	curv *= 2
	if curv <= 0 {
		return 0 // cannot happen for positive definite G; guard anyway
	}
	theta := -gd / curv

	// Clip to the box: increasing entries bounded above by Upper, the
	// decreasing ones below by 0 (and vice versa for negative θ).
	lo := math.Max(-x[kpp], -x[kmm])
	hi := math.Min(x[kpm], x[kmp])
	if p.Upper != nil {
		hi = math.Min(hi, math.Min(p.Upper[kpp]-x[kpp], p.Upper[kmm]-x[kmm]))
		lo = math.Max(lo, math.Max(x[kpm]-p.Upper[kpm], x[kmp]-p.Upper[kmp]))
	}
	if theta < lo {
		theta = lo
	} else if theta > hi {
		theta = hi
	}
	if theta == 0 || math.Abs(theta) < 1e-300 {
		return 0
	}

	x[kpp] += theta
	x[kmm] += theta
	x[kpm] -= theta
	x[kmp] -= theta

	// Gradient update g += 2G(θ·d).
	if diagG {
		g[kpp] += 2 * theta * p.G.Diag(kpp)
		g[kmm] += 2 * theta * p.G.Diag(kmm)
		g[kpm] -= 2 * theta * p.G.Diag(kpm)
		g[kmp] -= 2 * theta * p.G.Diag(kmp)
		if counters != nil {
			counters.Ops.Add(8)
		}
	} else {
		for a := 0; a < 4; a++ {
			p.G.Row(ks[a], grow)
			mat.AXPY(2*theta*sg[a], grow, g)
		}
		if counters != nil {
			counters.Ops.Add(int64(8 * len(g)))
		}
	}
	return theta
}
