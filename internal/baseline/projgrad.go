package baseline

import (
	"context"
	"fmt"
	"math"
	"time"

	"sea/internal/core"
	"sea/internal/mat"
	"sea/internal/trace"
)

// SolveProjGrad solves a fixed-totals general problem by projected gradient
// descent: steepest descent on f(x) = (x−x⁰)ᵀG(x−x⁰) with a 1/L step,
// followed by Euclidean projection onto the transportation polytope
// (computed by Dykstra's alternating projections). It is slow but relies on
// none of the equilibration-specific dual machinery, serving as a third
// independent reference for SEA's general solutions.
//
// Options use the unified core semantics: Epsilon is the step-delta
// tolerance, MaxIterations caps the gradient steps (the inner Dykstra
// projection runs at Epsilon/10 with a 100× iteration budget), and Trace
// receives one event per step. Cancellation is observed between steps and
// inside the inner projection.
func SolveProjGrad(ctx context.Context, p *core.GeneralProblem, opts *core.Options) (*core.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := fillOpts(opts)
	if p.Kind != core.FixedTotals {
		return nil, fmt.Errorf("baseline: projected gradient supports fixed totals only, got %v", p.Kind)
	}
	if err := p.Validate(true); err != nil {
		return nil, err
	}
	m, n := p.M, p.N
	mn := m * n

	// Lipschitz bound: L = 2·‖G‖∞ (max absolute row sum).
	var norm float64
	row := make([]float64, mn)
	for k := 0; k < mn; k++ {
		p.G.Row(k, row)
		var s float64
		for _, v := range row {
			s += math.Abs(v)
		}
		if s > norm {
			norm = s
		}
	}
	step := 1 / (2 * norm)

	// Euclidean-projection problem skeleton (unit weights).
	ones := make([]float64, mn)
	mat.Fill(ones, 1)
	proj := &core.DiagonalProblem{
		M: m, N: n,
		X0:    make([]float64, mn),
		Gamma: ones,
		S0:    p.S0, D0: p.D0,
		Upper: p.Upper,
		Kind:  core.FixedTotals,
	}
	// The inner projections run tighter than the outer tolerance and carry
	// no observer of their own — their cost is reported as this solver's
	// column (projection) phase.
	innerOpts := &core.Options{
		Epsilon:       o.Epsilon / 10,
		MaxIterations: o.MaxIterations * 100,
	}

	obs := o.Trace
	x, s, d := p.FeasibleStart()
	dev := make([]float64, mn)
	grad := make([]float64, mn)
	sol := &core.Solution{}
	for t := 1; t <= o.MaxIterations; t++ {
		if err := ctx.Err(); err != nil {
			return finishProjGrad(sol, p, x, s, d), err
		}
		sol.Iterations = t
		var ev trace.Event
		var mark time.Time
		if obs != nil {
			ev = trace.Event{Solver: "projgrad", Iteration: t, Checked: true}
			mark = time.Now()
		}
		for k := 0; k < mn; k++ {
			dev[k] = x[k] - p.X0[k]
		}
		p.G.MulVec(grad, dev)
		for k := 0; k < mn; k++ {
			proj.X0[k] = x[k] - step*2*grad[k]
		}
		if o.Counters != nil {
			o.Counters.Ops.Add(int64(mn) * int64(mn))
		}
		if obs != nil {
			now := time.Now()
			ev.RowPhase = now.Sub(mark)
			mark = now
		}
		pr, err := SolveDykstra(ctx, proj, innerOpts)
		if err != nil {
			if ctx.Err() != nil {
				return finishProjGrad(sol, p, x, s, d), ctx.Err()
			}
			return nil, fmt.Errorf("baseline: projected gradient inner projection: %w", err)
		}
		delta := mat.MaxAbsDiff(pr.X, x)
		copy(x, pr.X)
		sol.Residual = delta
		if o.Counters != nil {
			o.Counters.Iterations.Add(1)
			o.Counters.ConvChecks.Add(1)
			o.Counters.SerialOps.Add(int64(mn))
		}
		if obs != nil {
			ev.ColPhase = time.Since(mark)
			ev.Inner = pr.Iterations
			ev.Residual = delta
			ev.Ops = int64(mn) * int64(mn)
			ev.SerialOps = int64(mn)
			obs.ObserveIteration(ev)
		}
		if delta <= o.Epsilon {
			sol.Converged = true
			break
		}
	}
	finishProjGrad(sol, p, x, s, d)
	if !sol.Converged {
		return sol, fmt.Errorf("%w: projected gradient after %d iterations", core.ErrNotConverged, o.MaxIterations)
	}
	return sol, nil
}

// finishProjGrad fills sol with the current iterate and its objective.
func finishProjGrad(sol *core.Solution, p *core.GeneralProblem, x, s, d []float64) *core.Solution {
	sol.X = x
	sol.S = s
	sol.D = d
	sol.Objective = p.Objective(x, s, d)
	sol.DualValue = math.NaN()
	return sol
}
