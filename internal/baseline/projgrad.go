package baseline

import (
	"fmt"
	"math"

	"sea/internal/core"
	"sea/internal/mat"
)

// SolveProjGrad solves a fixed-totals general problem by projected gradient
// descent: steepest descent on f(x) = (x−x⁰)ᵀG(x−x⁰) with a 1/L step,
// followed by Euclidean projection onto the transportation polytope
// (computed by Dykstra's alternating projections). It is slow but relies on
// none of the equilibration-specific dual machinery, serving as a third
// independent reference for SEA's general solutions.
func SolveProjGrad(p *core.GeneralProblem, eps float64, maxIter int) (*core.Solution, error) {
	if p.Kind != core.FixedTotals {
		return nil, fmt.Errorf("baseline: projected gradient supports fixed totals only, got %v", p.Kind)
	}
	if err := p.Validate(true); err != nil {
		return nil, err
	}
	if maxIter <= 0 {
		maxIter = 10000
	}
	m, n := p.M, p.N
	mn := m * n

	// Lipschitz bound: L = 2·‖G‖∞ (max absolute row sum).
	var norm float64
	row := make([]float64, mn)
	for k := 0; k < mn; k++ {
		p.G.Row(k, row)
		var s float64
		for _, v := range row {
			s += math.Abs(v)
		}
		if s > norm {
			norm = s
		}
	}
	step := 1 / (2 * norm)

	// Euclidean-projection problem skeleton (unit weights).
	ones := make([]float64, mn)
	mat.Fill(ones, 1)
	proj := &core.DiagonalProblem{
		M: m, N: n,
		X0:    make([]float64, mn),
		Gamma: ones,
		S0:    p.S0, D0: p.D0,
		Upper: p.Upper,
		Kind:  core.FixedTotals,
	}

	x, s, d := p.FeasibleStart()
	dev := make([]float64, mn)
	grad := make([]float64, mn)
	sol := &core.Solution{}
	for t := 1; t <= maxIter; t++ {
		sol.Iterations = t
		for k := 0; k < mn; k++ {
			dev[k] = x[k] - p.X0[k]
		}
		p.G.MulVec(grad, dev)
		for k := 0; k < mn; k++ {
			proj.X0[k] = x[k] - step*2*grad[k]
		}
		pr, err := SolveDykstra(proj, eps/10, maxIter*100)
		if err != nil {
			return nil, fmt.Errorf("baseline: projected gradient inner projection: %w", err)
		}
		delta := mat.MaxAbsDiff(pr.X, x)
		copy(x, pr.X)
		sol.Residual = delta
		if delta <= eps {
			sol.Converged = true
			break
		}
	}
	sol.X = x
	sol.S = s
	sol.D = d
	sol.Objective = p.Objective(x, s, d)
	sol.DualValue = math.NaN()
	if !sol.Converged {
		return sol, fmt.Errorf("%w: projected gradient after %d iterations", core.ErrNotConverged, maxIter)
	}
	return sol, nil
}
