package baseline

import (
	"context"
	"math"
	"math/rand/v2"
	"testing"

	"sea/internal/core"
	"sea/internal/mat"
)

// TestUnsignedMatchesSEAInterior: when the signed optimum is strictly
// positive, dropping the nonnegativity constraints changes nothing, so the
// Cholesky-based unsigned estimator must equal SEA exactly.
func TestUnsignedMatchesSEAInterior(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 82))
	for trial := 0; trial < 8; trial++ {
		m := 2 + rng.IntN(5)
		n := 2 + rng.IntN(5)
		// Mild totals adjustment keeps the optimum interior.
		p := randFixedDiag(rng, m, n, 1.05)
		sea, err := core.SolveDiagonal(context.Background(), p, seaOpts())
		if err != nil {
			t.Fatal(err)
		}
		interior := true
		for _, v := range sea.X {
			if v < 1e-6 {
				interior = false
			}
		}
		if !interior {
			continue
		}
		uns, err := SolveUnsigned(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		for k := range sea.X {
			if math.Abs(sea.X[k]-uns.X[k]) > 1e-5*(1+math.Abs(sea.X[k])) {
				t.Fatalf("trial %d: interior optimum differs at %d: SEA %g vs unsigned %g",
					trial, k, sea.X[k], uns.X[k])
			}
		}
	}
}

// TestUnsignedNegativePathology: a classic instance where the unsigned
// estimator produces negative transactions while SEA stays feasible — the
// motivation for treating (4) explicitly.
func TestUnsignedNegativePathology(t *testing.T) {
	// A cell with a tiny prior in a row that must shrink a lot.
	x0 := []float64{
		0.01, 20, 20,
		10, 10, 10,
	}
	gamma := make([]float64, 6)
	for k := range gamma {
		gamma[k] = 1 // least squares, so the small cell is not protected
	}
	s0 := []float64{10, 32}
	d0 := []float64{2, 20, 20}
	p, err := core.NewFixed(2, 3, x0, gamma, s0, d0)
	if err != nil {
		t.Fatal(err)
	}
	uns, err := SolveUnsigned(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if MinEntry(uns.X) >= 0 {
		t.Fatalf("expected negative entries from the unsigned estimator, got min %g (X=%v)",
			MinEntry(uns.X), uns.X)
	}
	sea, err := core.SolveDiagonal(context.Background(), p, seaOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !mat.AllNonNegative(sea.X) {
		t.Error("SEA produced negative entries")
	}
	// Relaxation bound: the unsigned optimum can only be at most as costly.
	if uns.Objective > sea.Objective+1e-9 {
		t.Errorf("unsigned objective %g exceeds constrained %g", uns.Objective, sea.Objective)
	}
	// The unsigned solution still meets the totals exactly.
	rs := make([]float64, 2)
	cs := make([]float64, 3)
	p.RowSums(uns.X, rs)
	p.ColSums(uns.X, cs)
	for i, v := range rs {
		if math.Abs(v-s0[i]) > 1e-8 {
			t.Errorf("unsigned row %d total %g != %g", i, v, s0[i])
		}
	}
	for j, v := range cs {
		if math.Abs(v-d0[j]) > 1e-8 {
			t.Errorf("unsigned column %d total %g != %g", j, v, d0[j])
		}
	}
}

func TestUnsignedRejects(t *testing.T) {
	p := &core.DiagonalProblem{Kind: core.ElasticTotals}
	if _, err := SolveUnsigned(context.Background(), p); err == nil {
		t.Error("elastic accepted")
	}
	rng := rand.New(rand.NewPCG(83, 84))
	pb := randFixedDiag(rng, 2, 2, 1)
	pb.Upper = []float64{1, 1, 1, 1}
	if _, err := SolveUnsigned(context.Background(), pb); err == nil {
		t.Error("bounded accepted")
	}
}

func TestCholeskySolve(t *testing.T) {
	// 3×3 SPD system with known solution.
	a := []float64{
		4, 1, 0,
		1, 3, 1,
		0, 1, 2,
	}
	want := []float64{1, -2, 3}
	b := make([]float64, 3)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			b[i] += a[i*3+j] * want[j]
		}
	}
	got, err := mat.CholeskySolve(3, a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10 {
			t.Errorf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Non-PD rejected.
	bad := []float64{1, 2, 2, 1}
	if _, err := mat.CholeskySolve(2, bad, []float64{1, 1}); err == nil {
		t.Error("indefinite matrix accepted")
	}
	if _, err := mat.CholeskySolve(2, bad[:3], []float64{1, 1}); err == nil {
		t.Error("short matrix accepted")
	}
}

func TestCholeskyRandomSPD(t *testing.T) {
	rng := rand.New(rand.NewPCG(85, 86))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.IntN(20)
		// A = BᵀB + I is SPD.
		bmat := make([]float64, n*n)
		for k := range bmat {
			bmat[k] = rng.NormFloat64()
		}
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var s float64
				for k := 0; k < n; k++ {
					s += bmat[k*n+i] * bmat[k*n+j]
				}
				if i == j {
					s++
				}
				a[i*n+j] = s
			}
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		rhs := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				rhs[i] += a[i*n+j] * want[j]
			}
		}
		got, err := mat.CholeskySolve(n, a, rhs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-7*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}
