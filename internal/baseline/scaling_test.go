package baseline

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"sea/internal/core"
	"sea/internal/trace"
)

// csrFixed builds a banded CSR fixed-totals problem together with its
// densified twin (structural zeros pinned by [0,0] boxes are NOT needed for
// the scaling solvers: Sinkhorn preserves zeros natively, so the dense twin
// simply stores explicit zeros with tiny weights' cells absent from totals).
func csrFixed(rng *rand.Rand, m, n, band int) (*core.DiagonalProblem, *core.DiagonalProblem) {
	rowPtr := make([]int, m+1)
	var colIdx []int32
	var x0 []float64
	for i := 0; i < m; i++ {
		rowPtr[i] = len(colIdx)
		prev := int32(-1)
		for b := 0; b < band; b++ {
			j := int32((i + b*5) % n)
			if j <= prev {
				continue
			}
			prev = j
			colIdx = append(colIdx, j)
			x0 = append(x0, 0.2+rng.Float64()*10)
		}
		rowPtr[m] = len(colIdx)
	}
	rowPtr[m] = len(colIdx)
	nnz := len(colIdx)
	gamma := make([]float64, nnz)
	for k := range gamma {
		gamma[k] = 1 / x0[k]
	}
	pt := &core.Pattern{RowPtr: rowPtr, ColIdx: colIdx}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for k := rowPtr[i]; k < rowPtr[i+1]; k++ {
			s0[i] += 1.2 * x0[k]
			d0[colIdx[k]] += 1.2 * x0[k]
		}
	}
	sp := &core.DiagonalProblem{M: m, N: n, X0: x0, Gamma: gamma, S0: s0, D0: d0, Pattern: pt, Kind: core.FixedTotals}
	if err := sp.Validate(); err != nil {
		panic(err)
	}
	dn, err := sp.Densify()
	if err != nil {
		panic(err)
	}
	return sp, dn
}

// TestSinkhornMatchesRAS: both are the same biproportional iteration, so on
// a dense fixed problem the balanced matrices must agree closely.
func TestSinkhornMatchesRAS(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 3))
	p := randFixedDiag(rng, 9, 12, 1.5)
	o := optsWith(1e-10, 50000)
	ras, err := RAS(context.Background(), p.M, p.N, p.X0, p.S0, p.D0, o)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := SolveSinkhorn(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	for k := range sk.X {
		if math.Abs(sk.X[k]-ras.X[k]) > 1e-6*(1+math.Abs(ras.X[k])) {
			t.Fatalf("X[%d]: sinkhorn %g vs ras %g", k, sk.X[k], ras.X[k])
		}
	}
	if sk.Status != core.StatusConverged {
		t.Fatalf("status %v", sk.Status)
	}
}

// TestSinkhornCSRMatchesDense: the CSR solve and its densified twin must
// agree bit-for-bit on the support (dense zeros contribute exact zeros in
// the same accumulation order).
func TestSinkhornCSRMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewPCG(73, 9))
	sp, dn := csrFixed(rng, 18, 13, 4)
	o := optsWith(1e-9, 20000)
	a, err := SolveSinkhorn(context.Background(), sp, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SolveSinkhorn(context.Background(), dn, o)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations {
		t.Fatalf("iterations %d vs %d", a.Iterations, b.Iterations)
	}
	pt := sp.Pattern
	for i := 0; i < sp.M; i++ {
		for k := pt.RowPtr[i]; k < pt.RowPtr[i+1]; k++ {
			dv := b.X[i*sp.N+int(pt.ColIdx[k])]
			if math.Float64bits(a.X[k]) != math.Float64bits(dv) {
				t.Fatalf("X at (%d,%d): %v vs %v", i, pt.ColIdx[k], a.X[k], dv)
			}
		}
	}
}

// TestISPMatchesSEA: ISP solves the same quadratic program as SEA, so the
// primal solutions must agree to the tolerance across kinds and storages.
func TestISPMatchesSEA(t *testing.T) {
	rng := rand.New(rand.NewPCG(77, 1))
	sp, dn := csrFixed(rng, 15, 11, 4)
	cases := map[string]*core.DiagonalProblem{
		"dense/fixed": randFixedDiag(rng, 8, 10, 1.4),
		"csr/fixed":   sp,
		"dense/twin":  dn,
	}
	for name, p := range cases {
		o := optsWith(1e-10, 200000)
		o.Criterion = core.DualGradient
		ref, err := core.SolveDiagonal(context.Background(), p, seaOpts())
		if err != nil {
			t.Fatalf("%s: sea: %v", name, err)
		}
		got, err := SolveISP(context.Background(), p, o)
		if err != nil {
			t.Fatalf("%s: isp: %v", name, err)
		}
		for k := range got.X {
			if math.Abs(got.X[k]-ref.X[k]) > 1e-6*(1+math.Abs(ref.X[k])) {
				t.Fatalf("%s: X[%d]: isp %g vs sea %g", name, k, got.X[k], ref.X[k])
			}
		}
		if gap := math.Abs(got.Objective - ref.Objective); gap > 1e-6*(1+ref.Objective) {
			t.Fatalf("%s: objective %g vs %g", name, got.Objective, ref.Objective)
		}
	}
}

// TestScalingSolversTracePerSweep: both new solvers must stream one checked
// event per sweep through the observer — the property the NDJSON job
// streams rely on for scaling progress.
func TestScalingSolversTracePerSweep(t *testing.T) {
	rng := rand.New(rand.NewPCG(79, 5))
	p := randFixedDiag(rng, 7, 9, 1.3)
	for _, run := range []struct {
		name  string
		solve func(*core.Options) (*core.Solution, error)
	}{
		{"sinkhorn", func(o *core.Options) (*core.Solution, error) {
			return SolveSinkhorn(context.Background(), p, o)
		}},
		{"isp", func(o *core.Options) (*core.Solution, error) {
			return SolveISP(context.Background(), p, o)
		}},
	} {
		var col trace.Collector
		o := optsWith(1e-8, 10000)
		o.Trace = &col
		sol, err := run.solve(o)
		if err != nil {
			t.Fatalf("%s: %v", run.name, err)
		}
		evs := col.Events
		if len(evs) != sol.Iterations {
			t.Fatalf("%s: %d events for %d sweeps", run.name, len(evs), sol.Iterations)
		}
		for i, ev := range evs {
			if ev.Solver != run.name || ev.Iteration != i+1 || !ev.Checked {
				t.Fatalf("%s: event %d = %+v", run.name, i, ev)
			}
			if math.IsNaN(ev.Residual) || ev.Residual < 0 {
				t.Fatalf("%s: event %d residual %v", run.name, i, ev.Residual)
			}
		}
		// Residuals must reach the tolerance at the last sweep.
		if last := evs[len(evs)-1].Residual; last > o.Epsilon {
			t.Fatalf("%s: final traced residual %g > eps", run.name, last)
		}
	}
}

// TestSinkhornStructuralError mirrors the classical RAS failure mode.
func TestSinkhornStructuralError(t *testing.T) {
	x0 := []float64{1, 2, 0, 0, 3, 4} // row 1 empty
	gamma := []float64{1, 1, 1, 1, 1, 1}
	p := &core.DiagonalProblem{
		M: 3, N: 2, X0: x0, Gamma: gamma,
		S0: []float64{3, 5, 7}, D0: []float64{8, 7},
		Kind: core.FixedTotals,
	}
	if _, err := SolveSinkhorn(context.Background(), p, optsWith(1e-6, 100)); !errors.Is(err, ErrRASStructure) {
		t.Fatalf("err = %v, want ErrRASStructure", err)
	}
}

// TestISPRejectsInterval: the additive system does not model interval
// totals.
func TestISPRejectsInterval(t *testing.T) {
	p := &core.DiagonalProblem{
		M: 2, N: 2,
		X0: []float64{1, 1, 1, 1}, Gamma: []float64{1, 1, 1, 1},
		SLo: []float64{1, 1}, SHi: []float64{3, 3},
		DLo: []float64{1, 1}, DHi: []float64{3, 3},
		Kind: core.IntervalTotals,
	}
	if _, err := SolveISP(context.Background(), p, optsWith(1e-6, 100)); err == nil {
		t.Fatal("ISP accepted interval totals")
	}
}
