package baseline

import (
	"context"
	"fmt"
	"math"
	"time"

	"sea/internal/core"
	"sea/internal/equilibrate"
	"sea/internal/mat"
	"sea/internal/trace"
)

// SolveDykstra solves a fixed-totals diagonal constrained matrix problem by
// Dykstra's alternating projections in the γ-weighted norm: the solution is
// the projection of x⁰ onto the intersection of the row polytope
// {Σ_j x_ij = s⁰_i, x ≥ 0} and the column polytope {Σ_i x_ij = d⁰_j, x ≥ 0},
// and Dykstra's correction terms make the alternating projections converge
// to exactly that point.
//
// It shares no machinery with the SEA dual ascent beyond the closed-form
// single-polytope projection, making it the test suite's independent
// reference for SEA's answers.
//
// Options use the unified core semantics: Epsilon is the row-total residual
// tolerance, MaxIterations caps the projection cycles, and Trace receives
// one event per cycle. Cancellation is observed between cycles.
func SolveDykstra(ctx context.Context, p *core.DiagonalProblem, opts *core.Options) (*core.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := fillOpts(opts)
	if p.Kind != core.FixedTotals {
		return nil, fmt.Errorf("baseline: Dykstra supports fixed totals only, got %v", p.Kind)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := p.M, p.N
	mn := m * n

	x := mat.Clone(p.X0) // current point (projection source at start)
	y := make([]float64, mn)
	pcorr := make([]float64, mn) // Dykstra correction for the row polytope
	qcorr := make([]float64, mn) // Dykstra correction for the column polytope
	tmp := make([]float64, mn)

	maxDim := m
	if n > maxDim {
		maxDim = n
	}
	ws := equilibrate.NewWorkspace(maxDim)
	ccol := make([]float64, m)
	acol := make([]float64, m)
	ucol := make([]float64, m)
	xcol := make([]float64, m)

	obs := o.Trace
	sol := &core.Solution{}
	for t := 1; t <= o.MaxIterations; t++ {
		if err := ctx.Err(); err != nil {
			return partialDykstra(sol, p, x), err
		}
		sol.Iterations = t
		var ev trace.Event
		var mark time.Time
		var ops int64
		if obs != nil {
			ev = trace.Event{Solver: "dykstra", Iteration: t, Checked: true}
			mark = time.Now()
		}
		// Row projection of x + p.
		for k := 0; k < mn; k++ {
			tmp[k] = x[k] + pcorr[k]
		}
		for i := 0; i < m; i++ {
			c := tmp[i*n : (i+1)*n]
			_, a := ws.Scratch(n)
			for j := 0; j < n; j++ {
				a[j] = 0.5 / p.Gamma[i*n+j]
			}
			prob := equilibrate.Problem{C: c, A: a, R: p.S0[i]}
			if p.Upper != nil {
				prob.U = p.Upper[i*n : (i+1)*n]
			}
			res, err := prob.Solve(y[i*n:(i+1)*n], ws)
			if err != nil {
				return nil, fmt.Errorf("baseline: Dykstra row %d: %w", i, err)
			}
			ops += res.Ops
		}
		for k := 0; k < mn; k++ {
			pcorr[k] = tmp[k] - y[k]
		}
		if obs != nil {
			now := time.Now()
			ev.RowPhase = now.Sub(mark)
			mark = now
		}
		// Column projection of y + q.
		for k := 0; k < mn; k++ {
			tmp[k] = y[k] + qcorr[k]
		}
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				k := i*n + j
				ccol[i] = tmp[k]
				acol[i] = 0.5 / p.Gamma[k]
				if p.Upper != nil {
					ucol[i] = p.Upper[k]
				}
			}
			prob := equilibrate.Problem{C: ccol, A: acol, R: p.D0[j]}
			if p.Upper != nil {
				prob.U = ucol
			}
			res, err := prob.Solve(xcol, ws)
			if err != nil {
				return nil, fmt.Errorf("baseline: Dykstra column %d: %w", j, err)
			}
			for i := 0; i < m; i++ {
				x[i*n+j] = xcol[i]
			}
			ops += res.Ops
		}
		for k := 0; k < mn; k++ {
			qcorr[k] = tmp[k] - x[k]
		}
		if obs != nil {
			now := time.Now()
			ev.ColPhase = now.Sub(mark)
			mark = now
		}
		// Converged when the row totals (columns hold exactly) are met.
		var worst float64
		for i := 0; i < m; i++ {
			r := math.Abs(mat.Sum(x[i*n:(i+1)*n]) - p.S0[i])
			if r > worst {
				worst = r
			}
		}
		sol.Residual = worst
		if o.Counters != nil {
			o.Counters.Iterations.Add(1)
			o.Counters.Equilibrations.Add(int64(m + n))
			o.Counters.Ops.Add(ops)
			o.Counters.ConvChecks.Add(1)
			o.Counters.SerialOps.Add(int64(mn))
		}
		if obs != nil {
			ev.CheckPhase = time.Since(mark)
			ev.Residual = worst
			ev.Equilibrations = int64(m + n)
			ev.Ops = ops
			ev.SerialOps = int64(mn)
			obs.ObserveIteration(ev)
		}
		if worst <= o.Epsilon {
			sol.Converged = true
			break
		}
	}
	partialDykstra(sol, p, x)
	if !sol.Converged {
		return sol, fmt.Errorf("%w after %d Dykstra iterations (residual %g)", core.ErrNotConverged, o.MaxIterations, sol.Residual)
	}
	return sol, nil
}

// partialDykstra fills sol with the current iterate and its objective.
func partialDykstra(sol *core.Solution, p *core.DiagonalProblem, x []float64) *core.Solution {
	sol.X = x
	sol.S = mat.Clone(p.S0)
	sol.D = mat.Clone(p.D0)
	sol.Objective = p.Objective(x, sol.S, sol.D)
	sol.DualValue = math.NaN()
	return sol
}
