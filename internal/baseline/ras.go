// Package baseline implements the comparison algorithms of the paper's
// evaluation: the RC equilibration algorithm of Nagurney, Kim and Robinson
// (1990), the Bachem–Korte (1978) algorithm for quadratic optimization over
// transportation polytopes, the RAS / iterative-proportional-fitting method
// of Deming and Stephan (1940), and Dykstra's alternating projections as an
// independent reference solver for cross-validating SEA.
package baseline

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"sea/internal/core"
	"sea/internal/mat"
	"sea/internal/trace"
)

// ErrRASStructure is returned when RAS cannot possibly converge because the
// zero pattern of the prior matrix makes the target totals unreachable (the
// infeasible-RAS situation analyzed by Mohr, Crown and Polenske (1987)).
var ErrRASStructure = errors.New("baseline: RAS structurally infeasible: a zero row/column has a positive target total")

// RASResult reports the outcome of an RAS run.
type RASResult struct {
	// X is the final matrix (m×n row-major).
	X []float64
	// Iterations is the number of row+column scaling sweeps performed.
	Iterations int
	// Converged reports whether both relative total errors fell below the
	// tolerance.
	Converged bool
	// MaxRowErr and MaxColErr are the final relative total errors.
	MaxRowErr, MaxColErr float64
}

// RAS runs the classical biproportional scaling method: alternately scale
// each row to meet its target total and each column to meet its target. It
// preserves the zero pattern of x0 — the source of both its popularity
// (multiplicative structure) and its failure modes (it cannot move mass into
// zero cells, and it only solves a specific entropy objective rather than
// the paper's weighted least squares).
//
// x0 must be elementwise nonnegative. The unified options supply the
// tolerance (Epsilon, relative on the row and column totals), the sweep cap
// (MaxIterations), and the per-sweep Trace observer; all other option fields
// are ignored (scaling sweeps have no parallel phases or kernels).
// Cancellation is observed between sweeps. A nil ctx means
// context.Background.
func RAS(ctx context.Context, m, n int, x0, s0, d0 []float64, opts *core.Options) (*RASResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := fillOpts(opts)
	eps, maxIter := o.Epsilon, o.MaxIterations
	if len(x0) != m*n || len(s0) != m || len(d0) != n {
		return nil, fmt.Errorf("baseline: RAS dimension mismatch")
	}
	if !mat.AllNonNegative(x0) {
		return nil, fmt.Errorf("baseline: RAS requires a nonnegative prior")
	}
	if !mat.AllNonNegative(s0) || !mat.AllNonNegative(d0) {
		return nil, fmt.Errorf("baseline: RAS requires nonnegative totals")
	}

	x := mat.Clone(x0)
	rowSum := make([]float64, m)
	colSum := make([]float64, n)

	// Structural check: a zero row (column) with a positive target can
	// never be fixed by scaling.
	for i := 0; i < m; i++ {
		rowSum[i] = mat.Sum(x[i*n : (i+1)*n])
		if rowSum[i] == 0 && s0[i] > 0 {
			return nil, fmt.Errorf("%w (row %d)", ErrRASStructure, i)
		}
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			colSum[j] += x[i*n+j]
		}
	}
	for j := 0; j < n; j++ {
		if colSum[j] == 0 && d0[j] > 0 {
			return nil, fmt.Errorf("%w (column %d)", ErrRASStructure, j)
		}
	}

	obs := o.Trace
	res := &RASResult{X: x}
	for t := 1; t <= maxIter; t++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Iterations = t
		var ev trace.Event
		var mark time.Time
		if obs != nil {
			ev = trace.Event{Solver: "ras", Iteration: t, Checked: true}
			mark = time.Now()
		}
		// Row scaling.
		for i := 0; i < m; i++ {
			rs := mat.Sum(x[i*n : (i+1)*n])
			if rs > 0 {
				f := s0[i] / rs
				for j := 0; j < n; j++ {
					x[i*n+j] *= f
				}
			}
		}
		if obs != nil {
			now := time.Now()
			ev.RowPhase = now.Sub(mark)
			mark = now
		}
		// Column scaling.
		mat.Fill(colSum, 0)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				colSum[j] += x[i*n+j]
			}
		}
		for j := 0; j < n; j++ {
			if colSum[j] > 0 {
				f := d0[j] / colSum[j]
				for i := 0; i < m; i++ {
					x[i*n+j] *= f
				}
			}
		}
		if obs != nil {
			now := time.Now()
			ev.ColPhase = now.Sub(mark)
			mark = now
		}
		// Residuals (columns are exact right after column scaling; rows
		// have been perturbed by it).
		res.MaxRowErr, res.MaxColErr = rasErrors(m, n, x, s0, d0)
		if o.Counters != nil {
			o.Counters.Iterations.Add(1)
			o.Counters.ConvChecks.Add(1)
			o.Counters.SerialOps.Add(int64(2 * m * n))
		}
		if obs != nil {
			ev.CheckPhase = time.Since(mark)
			ev.Residual = math.Max(res.MaxRowErr, res.MaxColErr)
			ev.SerialOps = int64(2 * m * n)
			obs.ObserveIteration(ev)
		}
		if res.MaxRowErr <= eps && res.MaxColErr <= eps {
			res.Converged = true
			return res, nil
		}
	}
	return res, nil
}

// rasErrors returns the maximum relative row and column total errors.
func rasErrors(m, n int, x, s0, d0 []float64) (rowErr, colErr float64) {
	for i := 0; i < m; i++ {
		rs := mat.Sum(x[i*n : (i+1)*n])
		e := math.Abs(rs - s0[i])
		if s0[i] > 0 {
			e /= s0[i]
		}
		if e > rowErr {
			rowErr = e
		}
	}
	colSum := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			colSum[j] += x[i*n+j]
		}
	}
	for j := 0; j < n; j++ {
		e := math.Abs(colSum[j] - d0[j])
		if d0[j] > 0 {
			e /= d0[j]
		}
		if e > colErr {
			colErr = e
		}
	}
	return rowErr, colErr
}
