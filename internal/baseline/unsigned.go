package baseline

import (
	"context"
	"fmt"
	"math"

	"sea/internal/core"
	"sea/internal/mat"
)

// SolveUnsigned solves the fixed-totals diagonal problem *without* the
// nonnegativity constraints — the Stone (1962) / Byron (1978) /
// Van der Ploeg (1982) class of estimators the paper's Section 2 contrasts
// with the constrained matrix problem. Dropping x ≥ 0 makes the KKT
// conditions a dense symmetric positive definite linear system in the
// multipliers, solved here directly by Cholesky factorization:
//
//	x_ij = x⁰_ij + a_ij(λ_i + μ_j),  a_ij = 1/(2γ_ij),
//	row and column constraints ⇒ an (m+n−1)-dimensional system
//	(one multiplier is pinned to remove the λ+c, μ−c shift nullspace).
//
// Its solution coincides with SEA's whenever the signed optimum happens to
// be nonnegative, and exhibits the classical pathology — negative estimated
// transactions — whenever it does not; the tests demonstrate both.
// The solve is a single direct factorization, so ctx is only consulted
// before the O((m+n)³) Cholesky step; there is no iteration to trace.
func SolveUnsigned(ctx context.Context, p *core.DiagonalProblem) (*core.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if p.Kind != core.FixedTotals {
		return nil, fmt.Errorf("baseline: unsigned estimator supports fixed totals only, got %v", p.Kind)
	}
	if p.Upper != nil {
		return nil, fmt.Errorf("baseline: unsigned estimator does not support upper bounds")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := p.M, p.N

	// KKT system over (λ_0..λ_{m-1}, μ_0..μ_{n-2}); μ_{n-1} pinned to 0.
	dim := m + n - 1
	a := func(i, j int) float64 { return 0.5 / p.Gamma[i*n+j] }
	sys := make([]float64, dim*dim)
	rhs := make([]float64, dim)

	rowSum0 := make([]float64, m)
	colSum0 := make([]float64, n)
	p.RowSums(p.X0, rowSum0)
	p.ColSums(p.X0, colSum0)

	for i := 0; i < m; i++ {
		var diag float64
		for j := 0; j < n; j++ {
			diag += a(i, j)
			if j < n-1 {
				sys[i*dim+(m+j)] = a(i, j)
				sys[(m+j)*dim+i] = a(i, j)
			}
		}
		sys[i*dim+i] = diag
		rhs[i] = p.S0[i] - rowSum0[i]
	}
	for j := 0; j < n-1; j++ {
		var diag float64
		for i := 0; i < m; i++ {
			diag += a(i, j)
		}
		sys[(m+j)*dim+(m+j)] = diag
		rhs[m+j] = p.D0[j] - colSum0[j]
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mult, err := mat.CholeskySolve(dim, sys, rhs)
	if err != nil {
		return nil, fmt.Errorf("baseline: unsigned KKT system: %w", err)
	}

	lambda := mult[:m]
	mu := make([]float64, n)
	copy(mu, mult[m:])
	// mu[n-1] = 0 by the pinning.

	x := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			x[i*n+j] = p.X0[i*n+j] + a(i, j)*(lambda[i]+mu[j])
		}
	}
	sol := &core.Solution{
		X: x, S: mat.Clone(p.S0), D: mat.Clone(p.D0),
		Lambda: lambda, Mu: mu,
		Iterations: 1,
		Converged:  true,
	}
	sol.Objective = p.Objective(x, sol.S, sol.D)
	sol.DualValue = math.NaN()
	return sol, nil
}

// MinEntry returns the most negative entry of x (0 if none) — the unsigned
// estimator's pathology indicator.
func MinEntry(x []float64) float64 {
	var worst float64
	for _, v := range x {
		if v < worst {
			worst = v
		}
	}
	return worst
}
