package baseline

import (
	"context"
	"fmt"
	"math"
	"time"

	"sea/internal/core"
	"sea/internal/equilibrate"
	"sea/internal/mat"
	"sea/internal/metrics"
	"sea/internal/parallel"
	"sea/internal/trace"
)

// SolveRC implements the RC equilibration algorithm of Nagurney, Kim and
// Robinson (1990) for general quadratic constrained matrix problems with
// fixed row and column totals — the first baseline of the paper's Table 7.
//
// Where SEA nests dual alternation *inside* a single projection-method
// diagonalization (so the dense-G linear-term update runs once per outer
// iteration), RC nests the projection method *inside* each dual stage: the
// row stage solves the general problem subject to only the row constraints
// (column multipliers fixed) by iterated diagonalization and parallel row
// equilibration, then the column stage does the same for the columns. Each
// projection iteration needs a dense-matrix linear-term update and a serial
// convergence verification, which is exactly why the paper finds RC both
// slower in total work and less parallelizable than SEA (compare the paper's
// Figures 4 and 6).
// Cancellation is observed between projection iterations: when ctx is
// cancelled the solve returns promptly with ctx.Err(). A nil ctx means
// context.Background. Trace receives one event per outer dual cycle.
func SolveRC(ctx context.Context, p *core.GeneralProblem, opts *core.Options) (*core.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := fillOpts(opts)
	if p.Kind != core.FixedTotals {
		return nil, fmt.Errorf("baseline: RC supports fixed totals only, got %v", p.Kind)
	}
	if err := p.Validate(o.SkipDominanceCheck); err != nil {
		return nil, err
	}
	m, n := p.M, p.N
	mn := m * n

	x, _, _ := p.FeasibleStart()
	lambda := make([]float64, m)
	mu := make([]float64, n)

	gammaT := make([]float64, mn) // γ̃ = diag(G)/ρ
	rho := o.Relaxation
	for k := 0; k < mn; k++ {
		gammaT[k] = p.G.Diag(k) / rho
	}

	st := &rcState{
		ctx: ctx,
		p:   p, o: o, gammaT: gammaT,
		x:     x,
		z:     make([]float64, mn),
		xdev:  make([]float64, mn),
		gx:    make([]float64, mn),
		xPrev: make([]float64, mn),
	}
	st.runner = o.Runner
	if st.runner == nil {
		pool := parallel.NewPool(o.Procs)
		defer pool.Close()
		st.runner = pool
	}
	procs := st.runner.Workers()
	maxDim := m
	if n > maxDim {
		maxDim = n
	}
	if procs > maxDim {
		procs = maxDim
	}
	st.workspaces = make([]*equilibrate.Workspace, procs)
	st.colBufs = make([][]float64, procs)
	for c := range st.workspaces {
		st.workspaces[c] = equilibrate.NewWorkspace(maxDim)
		st.colBufs[c] = make([]float64, 2*m)
	}
	if !o.DisableWarmStart {
		// Per-subproblem warm-start states, indexed by row/column — never by
		// chunk — so the kernel's bit-exact warm sorts keep RC's results
		// independent of the worker count.
		st.rowStates = make([]equilibrate.State, m)
		st.colStates = make([]equilibrate.State, n)
	}

	xOuter := make([]float64, mn)
	totalInner := 0
	obs := o.Trace
	var prevSnap metrics.Snapshot
	if obs != nil {
		prevSnap = o.Counters.Snapshot()
	}
	for outer := 1; outer <= o.MaxIterations; outer++ {
		if err := ctx.Err(); err != nil {
			sol := st.finish(lambda, mu, outer-1, totalInner, math.NaN())
			sol.Converged = false
			return sol, err
		}
		copy(xOuter, st.x)
		var ev trace.Event
		var mark time.Time
		if obs != nil {
			ev = trace.Event{Solver: "rc", Iteration: outer, Checked: true}
			mark = time.Now()
		}

		it, err := st.stage(true, lambda, mu)
		if err != nil {
			if ctx.Err() != nil {
				sol := st.finish(lambda, mu, outer, totalInner+it, math.NaN())
				sol.Converged = false
				return sol, ctx.Err()
			}
			return nil, fmt.Errorf("baseline: RC row stage (outer %d): %w", outer, err)
		}
		totalInner += it
		if obs != nil {
			now := time.Now()
			ev.RowPhase = now.Sub(mark)
			mark = now
			ev.Inner = it
		}
		it, err = st.stage(false, lambda, mu)
		if err != nil {
			if ctx.Err() != nil {
				sol := st.finish(lambda, mu, outer, totalInner+it, math.NaN())
				sol.Converged = false
				return sol, ctx.Err()
			}
			return nil, fmt.Errorf("baseline: RC column stage (outer %d): %w", outer, err)
		}
		totalInner += it

		if o.Counters != nil {
			o.Counters.OuterIterations.Add(1)
			o.Counters.ConvChecks.Add(1)
			o.Counters.SerialOps.Add(int64(mn))
		}
		delta := mat.MaxAbsDiff(st.x, xOuter)
		if obs != nil {
			ev.ColPhase = time.Since(mark)
			ev.Inner += it
			ev.Residual = delta
			snap := o.Counters.Snapshot()
			ev.Equilibrations = snap.Equilibrations - prevSnap.Equilibrations
			ev.Ops = snap.Ops - prevSnap.Ops
			ev.SerialOps = snap.SerialOps - prevSnap.SerialOps
			prevSnap = snap
			obs.ObserveIteration(ev)
		}
		if delta <= o.Epsilon {
			return st.finish(lambda, mu, outer, totalInner, delta), nil
		}
	}
	sol := st.finish(lambda, mu, o.MaxIterations, totalInner, math.NaN())
	sol.Converged = false
	return sol, fmt.Errorf("%w: RC after %d outer iterations", core.ErrNotConverged, o.MaxIterations)
}

type rcState struct {
	ctx    context.Context
	p      *core.GeneralProblem
	o      *core.Options
	gammaT []float64

	x, z, xdev, gx, xPrev []float64

	runner     parallel.Runner
	workspaces []*equilibrate.Workspace
	colBufs    [][]float64
	rowStates  []equilibrate.State // warm-start state per row (nil when disabled)
	colStates  []equilibrate.State // warm-start state per column
	errs       error
}

// stage runs one dual stage (rows if rowStage, else columns): the projection
// method on the general objective subject to only that side's constraints,
// with the other side's multipliers fixed as linear terms. It updates x and
// the stage's multipliers in place and returns the number of projection
// iterations used.
func (st *rcState) stage(rowStage bool, lambda, mu []float64) (int, error) {
	p, o := st.p, st.o
	m, n := p.M, p.N
	mn := m * n

	for proj := 1; proj <= o.InnerMaxIterations; proj++ {
		if err := st.ctx.Err(); err != nil {
			return proj - 1, err
		}
		copy(st.xPrev, st.x)
		// Dense linear-term update z = x − ρ·[G(x−x⁰)]/diag(G), in parallel
		// over the rows of G.
		for k := 0; k < mn; k++ {
			st.xdev[k] = st.x[k] - p.X0[k]
		}
		st.runner.ForChunks(mn, func(_, lo, hi int) {
			p.G.MulVecRange(st.gx, st.xdev, lo, hi)
		})
		if o.Counters != nil {
			o.Counters.Ops.Add(int64(mn) * int64(mn))
		}
		if o.CostTrace != nil {
			o.CostTrace.Phases = append(o.CostTrace.Phases, core.PhaseCosts{Row: matvecCosts(mn)})
		}
		for k := 0; k < mn; k++ {
			st.z[k] = st.x[k] - st.gx[k]/st.gammaT[k]
		}

		var ph *core.PhaseCosts
		if o.CostTrace != nil {
			pc := core.PhaseCosts{}
			if rowStage {
				pc.Row = make([]int64, m)
			} else {
				pc.Col = make([]int64, n)
			}
			o.CostTrace.Phases = append(o.CostTrace.Phases, pc)
			ph = &o.CostTrace.Phases[len(o.CostTrace.Phases)-1]
		}

		if rowStage {
			st.runner.ForChunks(m, func(chunk, lo, hi int) {
				ws := st.workspaces[chunk]
				for i := lo; i < hi; i++ {
					c, a := ws.Scratch(n)
					for j := 0; j < n; j++ {
						k := i*n + j
						aj := 0.5 / st.gammaT[k]
						a[j] = aj
						c[j] = st.z[k] + aj*mu[j]
					}
					prob := equilibrate.Problem{C: c, A: a, R: p.S0[i]}
					if p.Upper != nil {
						prob.U = p.Upper[i*n : (i+1)*n]
					}
					var est *equilibrate.State
					if st.rowStates != nil {
						est = &st.rowStates[i]
					}
					res, err := prob.SolveState(st.x[i*n:(i+1)*n], ws, est)
					if err != nil {
						if st.errs == nil {
							st.errs = fmt.Errorf("row %d: %w", i, err)
						}
						return
					}
					lambda[i] = res.Lambda
					recordTask(o, ph, true, i, res.Ops+int64(2*n))
				}
			})
		} else {
			st.runner.ForChunks(n, func(chunk, lo, hi int) {
				ws := st.workspaces[chunk]
				buf := st.colBufs[chunk]
				c, a := buf[:m], buf[m:2*m]
				xcol := make([]float64, m)
				ucol := make([]float64, m)
				for j := lo; j < hi; j++ {
					for i := 0; i < m; i++ {
						k := i*n + j
						ai := 0.5 / st.gammaT[k]
						a[i] = ai
						c[i] = st.z[k] + ai*lambda[i]
					}
					prob := equilibrate.Problem{C: c, A: a, R: p.D0[j]}
					if p.Upper != nil {
						for i := 0; i < m; i++ {
							ucol[i] = p.Upper[i*n+j]
						}
						prob.U = ucol
					}
					var est *equilibrate.State
					if st.colStates != nil {
						est = &st.colStates[j]
					}
					res, err := prob.SolveState(xcol, ws, est)
					if err != nil {
						if st.errs == nil {
							st.errs = fmt.Errorf("column %d: %w", j, err)
						}
						return
					}
					for i := 0; i < m; i++ {
						st.x[i*n+j] = xcol[i]
					}
					mu[j] = res.Lambda
					recordTask(o, ph, false, j, res.Ops+int64(2*m))
				}
			})
		}
		if st.errs != nil {
			err := st.errs
			st.errs = nil
			return proj, err
		}

		// Serial projection-method convergence verification — the phase
		// that separates RC's parallel stages (paper, Section 5.2).
		if o.Counters != nil {
			o.Counters.Iterations.Add(1)
			o.Counters.ConvChecks.Add(1)
			o.Counters.SerialOps.Add(int64(mn))
		}
		if o.CostTrace != nil {
			o.CostTrace.Phases = append(o.CostTrace.Phases, core.PhaseCosts{Serial: int64(mn)})
		}
		if mat.MaxAbsDiff(st.x, st.xPrev) <= o.InnerEpsilon {
			return proj, nil
		}
	}
	return o.InnerMaxIterations, fmt.Errorf("%w: RC stage projection", core.ErrNotConverged)
}

func (st *rcState) finish(lambda, mu []float64, outer, inner int, residual float64) *core.Solution {
	p := st.p
	sol := &core.Solution{
		X: mat.Clone(st.x), S: mat.Clone(p.S0), D: mat.Clone(p.D0),
		Lambda: mat.Clone(lambda), Mu: mat.Clone(mu),
		Iterations:      outer,
		InnerIterations: inner,
		Converged:       true,
		Residual:        residual,
	}
	sol.Objective = p.Objective(sol.X, sol.S, sol.D)
	sol.DualValue = math.NaN()
	return sol
}

// fillOpts applies defaults for baseline solvers sharing core.Options.
func fillOpts(o *core.Options) *core.Options {
	if o == nil {
		return core.DefaultOptions()
	}
	out := *o
	if out.Epsilon <= 0 {
		out.Epsilon = 1e-3
	}
	if out.MaxIterations <= 0 {
		out.MaxIterations = 100000
	}
	if out.Procs <= 0 {
		out.Procs = 1
	}
	if out.Relaxation <= 0 || out.Relaxation > 1 {
		out.Relaxation = 1
	}
	if out.InnerEpsilon <= 0 {
		out.InnerEpsilon = out.Epsilon / 10
	}
	if out.InnerMaxIterations <= 0 {
		out.InnerMaxIterations = out.MaxIterations
	}
	if out.CheckEvery <= 0 {
		out.CheckEvery = 1
	}
	// Same subsumption rule as core's withDefaults: an iteration observer
	// implies counters, private ones when the caller attached none.
	if out.Trace != nil && out.Counters == nil {
		out.Counters = &metrics.Counters{}
	}
	return &out
}

// matvecCosts returns the per-row task costs of a dense mn×mn product.
func matvecCosts(mn int) []int64 {
	costs := make([]int64, mn)
	for k := range costs {
		costs[k] = int64(mn)
	}
	return costs
}

// recordTask stores one equilibration task's cost in the counters and trace.
func recordTask(o *core.Options, ph *core.PhaseCosts, row bool, idx int, cost int64) {
	if o.Counters != nil {
		o.Counters.Equilibrations.Add(1)
		o.Counters.Ops.Add(cost)
	}
	if ph != nil {
		if row {
			ph.Row[idx] = cost
		} else {
			ph.Col[idx] = cost
		}
	}
}
