package baseline

import (
	"context"
	"errors"
	"fmt"
	"math"

	"sea/internal/core"
	"sea/internal/mat"
	"sea/internal/scale"
	"sea/internal/trace"
)

// SolveSinkhorn runs Sinkhorn–Knopp biproportional balancing as a registry
// solver: alternately scale rows and columns of the prior until the totals
// are met. Like RAS it preserves the prior's zero pattern and solves an
// entropy objective rather than the paper's weighted least squares — it is
// a baseline, reported at the quadratic objective's value for comparison —
// but unlike the classical "ras" implementation it runs natively on CSR
// storage and detects Nathanson-style exact finite termination (the sweep
// map reaching a floating-point fixed point, reported via the trace as a
// final zero residual).
//
// The problem must have fixed totals (the caller checks; this function
// re-validates structure only). Options supply Epsilon (relative residual
// tolerance), MaxIterations, Trace and Counters; cancellation is observed
// after every sweep.
func SolveSinkhorn(ctx context.Context, p *core.DiagonalProblem, opts *core.Options) (*core.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := fillOpts(opts)
	if p.Kind != core.FixedTotals {
		return nil, fmt.Errorf("baseline: Sinkhorn requires fixed totals, got %v", p.Kind)
	}
	a := problemMatrix(p, p.X0)
	if !mat.AllNonNegative(p.X0) {
		return nil, fmt.Errorf("baseline: Sinkhorn requires a nonnegative prior")
	}

	obs := o.Trace
	ops := int64(2 * a.Nnz())
	u, v, res, err := scale.Sinkhorn(a, p.S0, p.D0, nil, nil, scale.SinkhornOptions{
		Tol:      o.Epsilon,
		MaxIters: o.MaxIterations,
		Observe: func(iter int, residual float64) {
			observeSweep(o, obs, "sinkhorn", iter, residual, ops)
		},
		Stop: func() bool { return ctx.Err() != nil },
	})
	if err != nil {
		if errors.Is(err, scale.ErrStructure) {
			return nil, fmt.Errorf("%w (%v)", ErrRASStructure, err)
		}
		return nil, err
	}
	sol := scalingSolution(p, nil, nil, res, sinkhornX(p, u, v))
	if cerr := ctx.Err(); cerr != nil && !res.Converged {
		sol.Status = core.StatusCancelled
		return sol, cerr
	}
	if !res.Converged {
		return sol, fmt.Errorf("%w: Sinkhorn after %d sweeps (residual %g)", core.ErrNotConverged, res.Iterations, res.Residual)
	}
	return sol, nil
}

// SolveISP runs the iterative scaling procedure as a registry solver:
// clamped additive Gauss–Seidel sweeps on the exact KKT system of the
// diagonal problem (scale.System). Unlike the multiplicative baselines this
// solves the paper's actual quadratic objective — a fixed point of the
// sweep satisfies the full KKT system — just by cheaper, linearized sweeps
// than SEA's exact equilibrations, so it needs more of them on hard
// instances. Fixed, elastic and balanced totals are supported over both
// storages; interval totals are not modeled (the caller rejects them).
func SolveISP(ctx context.Context, p *core.DiagonalProblem, opts *core.Options) (*core.Solution, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	o := fillOpts(opts)
	sys, err := ispSystem(p)
	if err != nil {
		return nil, err
	}
	obs := o.Trace
	lambda := make([]float64, p.M)
	mu := make([]float64, p.N)
	if o.Mu0 != nil {
		copy(mu, o.Mu0)
	}
	colSum := make([]float64, p.N)
	colASum := make([]float64, p.N)
	nnz := int64(sys.A.Nnz())
	var total scale.Result
	base := 0
	observe := func(iter int, residual float64) {
		observeSweep(o, obs, "isp", base+iter, residual, 2*nnz)
	}
	// One Run call per sweep: the duals persist across calls, so this is the
	// same iteration with a cancellation check between sweeps.
	for base = 0; base < o.MaxIterations; base++ {
		res := sys.Run(lambda, mu, 1, o.Epsilon, colSum, colASum, observe)
		total.Iterations = base + 1
		total.Residual = res.Residual
		total.Converged = res.Converged
		if res.Exact && !total.Exact {
			total.Exact = true
			total.ExactIteration = base + 1
		}
		if res.Converged {
			break
		}
		if err := ctx.Err(); err != nil {
			sol := ispSolution(p, sys, lambda, mu, total)
			sol.Status = core.StatusCancelled
			return sol, err
		}
	}
	sol := ispSolution(p, sys, lambda, mu, total)
	if !total.Converged {
		return sol, fmt.Errorf("%w: ISP after %d sweeps (residual %g)", core.ErrNotConverged, total.Iterations, total.Residual)
	}
	return sol, nil
}

// problemMatrix wraps per-cell values in the problem's storage layout.
func problemMatrix(p *core.DiagonalProblem, val []float64) scale.Matrix {
	if p.Pattern != nil {
		return scale.CSR(p.M, p.N, val, p.Pattern.RowPtr, p.Pattern.ColIdx)
	}
	return scale.Dense(p.M, p.N, val)
}

// ispSystem builds the additive KKT system of a diagonal problem.
func ispSystem(p *core.DiagonalProblem) (*scale.System, error) {
	if p.Kind == core.IntervalTotals {
		return nil, fmt.Errorf("baseline: ISP does not model interval totals")
	}
	slopes := make([]float64, len(p.Gamma))
	for k, g := range p.Gamma {
		slopes[k] = 0.5 / g
	}
	sys := &scale.System{
		A:         problemMatrix(p, slopes),
		X0:        p.X0,
		Lo:        p.Lower,
		Up:        p.Upper,
		RowTarget: p.S0,
	}
	halfInv := func(w []float64) []float64 {
		out := make([]float64, len(w))
		for i, v := range w {
			out[i] = 0.5 / v
		}
		return out
	}
	switch p.Kind {
	case core.FixedTotals:
		sys.ColTarget = p.D0
	case core.ElasticTotals:
		sys.ColTarget = p.D0
		sys.RowDiag = halfInv(p.Alpha)
		sys.ColDiag = halfInv(p.Beta)
	case core.Balanced:
		sys.Coupled = true
		sys.RowDiag = halfInv(p.Alpha)
	}
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	return sys, nil
}

// observeSweep forwards one scaling sweep to the counters and the observer,
// following the same event shape RAS emits: every sweep checks convergence,
// and the whole sweep is serial work.
func observeSweep(o *core.Options, obs trace.Observer, solver string, iter int, residual float64, ops int64) {
	if o.Counters != nil {
		o.Counters.Iterations.Add(1)
		o.Counters.ConvChecks.Add(1)
		o.Counters.SerialOps.Add(ops)
	}
	if obs != nil {
		obs.ObserveIteration(trace.Event{
			Solver:    solver,
			Iteration: iter,
			Checked:   true,
			Residual:  residual,
			SerialOps: ops,
		})
	}
}

// sinkhornX materializes the balanced matrix u_i·x⁰_ij·v_j in storage order.
func sinkhornX(p *core.DiagonalProblem, u, v []float64) []float64 {
	a := problemMatrix(p, p.X0)
	x := make([]float64, len(p.X0))
	for i := 0; i < a.M; i++ {
		lo, hi := a.Row(i)
		for k := lo; k < hi; k++ {
			x[k] = u[i] * a.Val[k] * v[a.Col(i, k)]
		}
	}
	return x
}

// scalingSolution packages a biproportional result (no dual information).
func scalingSolution(p *core.DiagonalProblem, s, d []float64, res scale.Result, x []float64) *core.Solution {
	if s == nil {
		s = make([]float64, p.M)
		p.RowSums(x, s)
	}
	if d == nil {
		d = make([]float64, p.N)
		p.ColSums(x, d)
	}
	sol := &core.Solution{
		X: x, S: s, D: d,
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Residual:   res.Residual,
		Objective:  p.Objective(x, s, d),
		DualValue:  math.NaN(),
	}
	if res.Converged {
		sol.Status = core.StatusConverged
	} else {
		sol.Status = core.StatusMaxIterations
	}
	return sol
}

// ispSolution packages the ISP duals as a full Solution: the primal is
// x(λ,μ), the totals follow the kind's elastic relations, and because ISP's
// multipliers live in the same convention as SEA's, the dual value is the
// true ζ(λ,μ).
func ispSolution(p *core.DiagonalProblem, sys *scale.System, lambda, mu []float64, res scale.Result) *core.Solution {
	x := make([]float64, len(p.X0))
	s := make([]float64, p.M)
	d := make([]float64, p.N)
	worst := sys.Eval(lambda, mu, x, nil, nil)
	switch p.Kind {
	case core.FixedTotals:
		copy(s, p.S0)
		copy(d, p.D0)
	case core.ElasticTotals:
		for i := range s {
			s[i] = p.S0[i] - 0.5/p.Alpha[i]*lambda[i]
		}
		for j := range d {
			d[j] = p.D0[j] - 0.5/p.Beta[j]*mu[j]
		}
	case core.Balanced:
		for i := range s {
			s[i] = p.S0[i] - 0.5/p.Alpha[i]*(lambda[i]+mu[i])
		}
		copy(d, s)
	}
	sol := &core.Solution{
		X: x, S: s, D: d,
		Lambda: mat.Clone(lambda), Mu: mat.Clone(mu),
		Iterations: res.Iterations,
		Converged:  res.Converged,
		Residual:   worst,
		Objective:  p.Objective(x, s, d),
		DualValue:  core.DualValue(p, lambda, mu),
	}
	if res.Converged {
		sol.Status = core.StatusConverged
	} else {
		sol.Status = core.StatusMaxIterations
	}
	return sol
}
