package baseline

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"sea/internal/core"
	"sea/internal/mat"
	"sea/internal/metrics"
)

// optsWith returns default options with the given tolerance and limit.
func optsWith(eps float64, maxIter int) *core.Options {
	o := core.DefaultOptions()
	o.Epsilon = eps
	o.MaxIterations = maxIter
	return o
}

// randFixedDiag builds a random feasible fixed-totals diagonal problem.
func randFixedDiag(rng *rand.Rand, m, n int, factor float64) *core.DiagonalProblem {
	x0 := make([]float64, m*n)
	gamma := make([]float64, m*n)
	for k := range x0 {
		x0[k] = 0.1 + rng.Float64()*100
		gamma[k] = 1 / x0[k]
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += factor * x0[i*n+j]
			d0[j] += factor * x0[i*n+j]
		}
	}
	p, err := core.NewFixed(m, n, x0, gamma, s0, d0)
	if err != nil {
		panic(err)
	}
	return p
}

func seaOpts() *core.Options {
	o := core.DefaultOptions()
	o.Epsilon = 1e-10
	o.Criterion = core.DualGradient
	o.MaxIterations = 500000
	return o
}

// TestDykstraMatchesSEA cross-validates the two independent solvers.
func TestDykstraMatchesSEA(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	for trial := 0; trial < 8; trial++ {
		m := 2 + rng.IntN(6)
		n := 2 + rng.IntN(6)
		p := randFixedDiag(rng, m, n, 1+rng.Float64()*2)
		sea, err := core.SolveDiagonal(context.Background(), p, seaOpts())
		if err != nil {
			t.Fatal(err)
		}
		dyk, err := SolveDykstra(context.Background(), p, optsWith(1e-10, 500000))
		if err != nil {
			t.Fatal(err)
		}
		for k := range sea.X {
			if math.Abs(sea.X[k]-dyk.X[k]) > 1e-5*(1+math.Abs(sea.X[k])) {
				t.Fatalf("trial %d: SEA and Dykstra disagree at %d: %g vs %g",
					trial, k, sea.X[k], dyk.X[k])
			}
		}
		if math.Abs(sea.Objective-dyk.Objective) > 1e-6*(1+sea.Objective) {
			t.Errorf("trial %d: objectives %g vs %g", trial, sea.Objective, dyk.Objective)
		}
	}
}

func TestDykstraRejectsElastic(t *testing.T) {
	p := &core.DiagonalProblem{
		M: 2, N: 2,
		X0: []float64{1, 1, 1, 1}, Gamma: []float64{1, 1, 1, 1},
		S0: []float64{2, 2}, D0: []float64{2, 2},
		Alpha: []float64{1, 1}, Beta: []float64{1, 1},
		Kind: core.ElasticTotals,
	}
	if _, err := SolveDykstra(context.Background(), p, optsWith(1e-6, 100)); err == nil {
		t.Error("Dykstra accepted an elastic problem")
	}
}

func TestRASBalancesFeasibleTable(t *testing.T) {
	rng := rand.New(rand.NewPCG(53, 54))
	m, n := 6, 8
	x0 := make([]float64, m*n)
	for k := range x0 {
		x0[k] = 0.5 + rng.Float64()*10
	}
	// Targets from a positive matrix: RAS-feasible.
	want := make([]float64, m*n)
	for k := range want {
		want[k] = 0.5 + rng.Float64()*10
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += want[i*n+j]
			d0[j] += want[i*n+j]
		}
	}
	res, err := RAS(context.Background(), m, n, x0, s0, d0, optsWith(1e-10, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("RAS did not converge: rowErr=%g colErr=%g", res.MaxRowErr, res.MaxColErr)
	}
	// Zero pattern preserved (none here) and totals met.
	rowErr, colErr := rasErrors(m, n, res.X, s0, d0)
	if rowErr > 1e-9 || colErr > 1e-9 {
		t.Errorf("totals not met: %g, %g", rowErr, colErr)
	}
}

func TestRASPreservesZeros(t *testing.T) {
	x0 := []float64{
		1, 0, 2,
		3, 4, 0,
	}
	s0 := []float64{4, 6}
	d0 := []float64{5, 3, 2}
	res, err := RAS(context.Background(), 2, 3, x0, s0, d0, optsWith(1e-9, 10000))
	if err != nil {
		t.Fatal(err)
	}
	if res.X[1] != 0 || res.X[5] != 0 {
		t.Errorf("RAS moved mass into zero cells: %v", res.X)
	}
}

// TestRASNonconvergence reproduces the Mohr–Crown–Polenske failure: a zero
// pattern that makes the targets unreachable. SEA solves the same instance.
func TestRASNonconvergence(t *testing.T) {
	// Row 0 can only place mass in column 0, but column 0's target is
	// smaller than row 0's: multiplicative scaling can never satisfy both.
	x0 := []float64{
		5, 0,
		1, 1,
	}
	s0 := []float64{6, 2}
	d0 := []float64{3, 5}
	res, err := RAS(context.Background(), 2, 2, x0, s0, d0, optsWith(1e-6, 500))
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("RAS converged on an infeasible zero pattern: %+v", res)
	}

	// SEA, free to move mass into the zero cell, solves it.
	gamma := []float64{1, 1, 1, 1}
	p, err := core.NewFixed(2, 2, x0, gamma, s0, d0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := core.SolveDiagonal(context.Background(), p, seaOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Converged {
		t.Error("SEA failed on the RAS-infeasible instance")
	}
	if sol.X[1] <= 0 {
		t.Errorf("SEA should place mass in the zero cell, got %g", sol.X[1])
	}
}

func TestRASStructuralError(t *testing.T) {
	x0 := []float64{0, 0, 1, 1}
	if _, err := RAS(context.Background(), 2, 2, x0, []float64{3, 2}, []float64{2, 3}, optsWith(1e-6, 100)); !errors.Is(err, ErrRASStructure) {
		t.Errorf("zero row with positive target: err = %v", err)
	}
	if _, err := RAS(context.Background(), 2, 2, []float64{1, -1, 1, 1}, []float64{1, 1}, []float64{1, 1}, optsWith(1e-6, 100)); err == nil {
		t.Error("negative prior accepted")
	}
	if _, err := RAS(context.Background(), 2, 2, []float64{1}, []float64{1, 1}, []float64{1, 1}, optsWith(1e-6, 100)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

// denseDominantG mirrors the paper's dense weight generator.
func denseDominantG(rng *rand.Rand, n int) *mat.DenseSym {
	data := make([]float64, n*n)
	rowAbs := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := (rng.Float64()*2 - 1) * 450 / float64(n)
			data[i*n+j] = v
			data[j*n+i] = v
			rowAbs[i] += math.Abs(v)
			rowAbs[j] += math.Abs(v)
		}
	}
	for i := 0; i < n; i++ {
		d := 500 + rng.Float64()*300
		if d <= rowAbs[i] {
			d = rowAbs[i] + 1
		}
		data[i*n+i] = d
	}
	return mat.MustDenseSym(n, data)
}

func randGeneralFixed(rng *rand.Rand, m, n int) *core.GeneralProblem {
	mn := m * n
	x0 := make([]float64, mn)
	for k := range x0 {
		x0[k] = rng.Float64() * 100
	}
	s0 := make([]float64, m)
	d0 := make([]float64, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s0[i] += 1.5 * x0[i*n+j]
			d0[j] += 1.5 * x0[i*n+j]
		}
	}
	return &core.GeneralProblem{
		M: m, N: n, X0: x0,
		G:  denseDominantG(rng, mn),
		S0: s0, D0: d0,
		Kind: core.FixedTotals,
	}
}

func generalOpts() *core.Options {
	o := core.DefaultOptions()
	o.Epsilon = 1e-7
	o.InnerEpsilon = 1e-9
	o.Criterion = core.DualGradient
	o.MaxIterations = 5000
	return o
}

// TestRCMatchesSEAGeneral: RC and SEA must agree on general problems.
func TestRCMatchesSEAGeneral(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 56))
	for trial := 0; trial < 4; trial++ {
		m := 3 + rng.IntN(3)
		n := 3 + rng.IntN(3)
		p := randGeneralFixed(rng, m, n)
		sea, err := core.SolveGeneral(context.Background(), p, generalOpts())
		if err != nil {
			t.Fatal(err)
		}
		var c metrics.Counters
		o := generalOpts()
		o.Counters = &c
		rc, err := SolveRC(context.Background(), p, o)
		if err != nil {
			t.Fatal(err)
		}
		for k := range sea.X {
			if math.Abs(sea.X[k]-rc.X[k]) > 1e-3*(1+math.Abs(sea.X[k])) {
				t.Fatalf("trial %d: SEA and RC disagree at %d: %g vs %g", trial, k, sea.X[k], rc.X[k])
			}
		}
		rep := core.CheckKKTGeneral(p, rc)
		if !rep.Satisfied(0.5) {
			t.Errorf("trial %d: RC KKT: %+v", trial, rep)
		}
		if c.Snapshot().OuterIterations == 0 {
			t.Error("RC counters not populated")
		}
	}
}

// TestBKMatchesSEADiagonalG: B-K on a diagonal-G general problem agrees with
// the diagonal SEA solution.
func TestBKMatchesSEADiagonalG(t *testing.T) {
	rng := rand.New(rand.NewPCG(57, 58))
	for trial := 0; trial < 4; trial++ {
		m := 3 + rng.IntN(3)
		n := 3 + rng.IntN(3)
		dp := randFixedDiag(rng, m, n, 1.7)
		gp := &core.GeneralProblem{
			M: m, N: n, X0: dp.X0,
			G:  mat.MustDiagonal(mat.Clone(dp.Gamma)),
			S0: dp.S0, D0: dp.D0,
			Kind: core.FixedTotals,
		}
		sea, err := core.SolveDiagonal(context.Background(), dp, seaOpts())
		if err != nil {
			t.Fatal(err)
		}
		o := core.DefaultOptions()
		o.Epsilon = 1e-9
		o.MaxIterations = 100000
		bk, err := SolveBK(context.Background(), gp, o)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(bk.Objective-sea.Objective) > 1e-4*(1+sea.Objective) {
			t.Errorf("trial %d: B-K objective %g vs SEA %g", trial, bk.Objective, sea.Objective)
		}
		for k := range sea.X {
			if math.Abs(sea.X[k]-bk.X[k]) > 1e-2*(1+math.Abs(sea.X[k])) {
				t.Fatalf("trial %d: B-K and SEA disagree at %d: %g vs %g", trial, k, bk.X[k], sea.X[k])
			}
		}
	}
}

// TestBKMatchesSEADenseG: B-K on a dense-G problem reaches SEA's objective.
func TestBKMatchesSEADenseG(t *testing.T) {
	rng := rand.New(rand.NewPCG(59, 60))
	p := randGeneralFixed(rng, 4, 4)
	sea, err := core.SolveGeneral(context.Background(), p, generalOpts())
	if err != nil {
		t.Fatal(err)
	}
	o := core.DefaultOptions()
	o.Epsilon = 1e-8
	o.MaxIterations = 100000
	bk, err := SolveBK(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bk.Objective-sea.Objective) > 1e-3*(1+math.Abs(sea.Objective)) {
		t.Errorf("B-K objective %g vs SEA %g", bk.Objective, sea.Objective)
	}
}

// TestBKFeasibleThroughout: B-K is a primal method — every sweep maintains
// the transportation constraints exactly.
func TestBKFeasibleThroughout(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	p := randGeneralFixed(rng, 4, 5)
	o := core.DefaultOptions()
	o.Epsilon = 1e-8
	o.MaxIterations = 50000
	bk, err := SolveBK(context.Background(), p, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.M; i++ {
		if r := math.Abs(mat.Sum(bk.X[i*p.N:(i+1)*p.N]) - p.S0[i]); r > 1e-6*(1+p.S0[i]) {
			t.Errorf("row %d total violated by %g", i, r)
		}
	}
	if !mat.AllNonNegative(bk.X) {
		t.Error("B-K produced negative entries")
	}
}

func TestBaselinesRejectElastic(t *testing.T) {
	p := &core.GeneralProblem{Kind: core.ElasticTotals}
	if _, err := SolveRC(context.Background(), p, nil); err == nil {
		t.Error("RC accepted elastic problem")
	}
	if _, err := SolveBK(context.Background(), p, nil); err == nil {
		t.Error("B-K accepted elastic problem")
	}
}

// TestProjGradMatchesSEA: projected gradient — gradient steps plus
// Euclidean Dykstra projections, no equilibration duals — agrees with SEA on
// general problems: a third independent cross-check.
func TestProjGradMatchesSEA(t *testing.T) {
	rng := rand.New(rand.NewPCG(63, 64))
	for trial := 0; trial < 3; trial++ {
		m := 3 + rng.IntN(2)
		n := 3 + rng.IntN(2)
		p := randGeneralFixed(rng, m, n)
		sea, err := core.SolveGeneral(context.Background(), p, generalOpts())
		if err != nil {
			t.Fatal(err)
		}
		pg, err := SolveProjGrad(context.Background(), p, optsWith(1e-6, 50000))
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pg.Objective-sea.Objective) > 1e-3*(1+math.Abs(sea.Objective)) {
			t.Errorf("trial %d: projected gradient objective %g vs SEA %g",
				trial, pg.Objective, sea.Objective)
		}
		for k := range sea.X {
			if math.Abs(sea.X[k]-pg.X[k]) > 1e-2*(1+math.Abs(sea.X[k])) {
				t.Fatalf("trial %d: disagree at %d: %g vs %g", trial, k, pg.X[k], sea.X[k])
			}
		}
	}
}

func TestProjGradRejectsElastic(t *testing.T) {
	p := &core.GeneralProblem{Kind: core.ElasticTotals}
	if _, err := SolveProjGrad(context.Background(), p, optsWith(1e-6, 100)); err == nil {
		t.Error("elastic problem accepted")
	}
}
