package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	var buf bytes.Buffer
	Render(&buf, "Title", []string{"a", "longheader"}, [][]string{
		{"1", "2"},
		{"333333", "4"},
	})
	out := buf.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "longheader") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "333333") {
		t.Error("missing cell")
	}
	// Columns align: the header line and data lines have the same prefix
	// width for column 2.
	lines := strings.Split(out, "\n")
	var headerLine, dataLine string
	for _, l := range lines {
		if strings.Contains(l, "longheader") {
			headerLine = l
		}
		if strings.Contains(l, "333333") {
			dataLine = l
		}
	}
	if strings.Index(headerLine, "longheader") != strings.Index(dataLine, "4") {
		t.Errorf("columns misaligned:\n%q\n%q", headerLine, dataLine)
	}
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	RenderCSV(&buf, []string{"x", "y"}, [][]string{{"1", "2"}, {"3", "4"}})
	want := "x,y\n1,2\n3,4\n"
	if buf.String() != want {
		t.Errorf("got %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Errorf("F = %q", F(1.23456, 2))
	}
	if F(math.NaN(), 2) != "-" {
		t.Errorf("F(NaN) = %q", F(math.NaN(), 2))
	}
	if D(42) != "42" || D64(43) != "43" {
		t.Error("D/D64 wrong")
	}
	if Pct(0.965) != "96.50%" {
		t.Errorf("Pct = %q", Pct(0.965))
	}
	if Pct(math.NaN()) != "-" {
		t.Errorf("Pct(NaN) = %q", Pct(math.NaN()))
	}
}

func TestChart(t *testing.T) {
	var buf bytes.Buffer
	Chart(&buf, "Figure", "CPUs", "speedup",
		[]float64{2, 4, 6},
		[]Series{
			{Name: "SEA", Ys: []float64{1.9, 3.5, 4.7}},
			{Name: "RC", Ys: []float64{1.7, 2.2, 2.4}},
		})
	out := buf.String()
	for _, want := range []string{"Figure", "speedup", "CPUs", "legend", "SEA", "RC", "*", "o"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
	// The largest value maps near the top row, smallest near the bottom.
	lines := strings.Split(out, "\n")
	var topMark, bottomMark int = -1, -1
	for i, l := range lines {
		if strings.ContainsAny(l, "*o") {
			if topMark == -1 {
				topMark = i
			}
			bottomMark = i
		}
	}
	if topMark == -1 || topMark == bottomMark {
		t.Fatal("marks not spread vertically")
	}
}

func TestChartDegenerate(t *testing.T) {
	var buf bytes.Buffer
	// Single point, flat series — must not panic or divide by zero.
	Chart(&buf, "t", "x", "y", []float64{3}, []Series{{Name: "s", Ys: []float64{5}}})
	if buf.Len() == 0 {
		t.Error("no output for single point")
	}
	Chart(&buf, "t", "x", "y", nil, nil) // empty input: silently nothing
}
