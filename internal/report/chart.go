package report

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Series is one line of an ASCII chart: y values indexed like the shared xs.
type Series struct {
	Name string
	Ys   []float64
}

// Chart renders a simple ASCII scatter/line chart — enough to reproduce the
// shape of the paper's speedup figures (Figures 5 and 7) in a terminal.
// xs are shared x coordinates; each series must have len(xs) points.
func Chart(w io.Writer, title, xLabel, yLabel string, xs []float64, series []Series) {
	const width, height = 60, 16
	if len(xs) == 0 || len(series) == 0 {
		return
	}
	minX, maxX := xs[0], xs[0]
	for _, x := range xs {
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
	}
	minY, maxY := series[0].Ys[0], series[0].Ys[0]
	for _, s := range series {
		for _, y := range s.Ys {
			if y < minY {
				minY = y
			}
			if y > maxY {
				maxY = y
			}
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Pad the y range slightly.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	marks := []byte{'*', 'o', '+', 'x', '#', '@'}
	for si, s := range series {
		mark := marks[si%len(marks)]
		for i, y := range s.Ys {
			col := int(float64(width-1) * (xs[i] - minX) / (maxX - minX))
			row := height - 1 - int(float64(height-1)*(y-minY)/(maxY-minY))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = mark
			}
		}
	}

	fmt.Fprintln(w, title)
	fmt.Fprintf(w, "%s\n", yLabel)
	for r, line := range grid {
		yVal := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(w, "%8.2f |%s\n", yVal, string(line))
	}
	fmt.Fprintf(w, "%s+%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s%-8.2f%s%8.2f  (%s)\n", strings.Repeat(" ", 10), minX, strings.Repeat(" ", width-16), maxX, xLabel)
	// Legend, stable order.
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = fmt.Sprintf("%c = %s", marks[i%len(marks)], s.Name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "  legend: %s\n", strings.Join(names, "   "))
}
