// Package report renders experiment results as fixed-width text tables in
// the style of the paper, and as CSV for further processing.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Render writes a fixed-width table with a title, header row and rule lines.
func Render(w io.Writer, title string, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var total int
	for _, wd := range widths {
		total += wd + 2
	}
	if title != "" {
		fmt.Fprintln(w, title)
	}
	rule := strings.Repeat("-", total)
	fmt.Fprintln(w, rule)
	for i, h := range headers {
		fmt.Fprintf(w, "%-*s  ", widths[i], h)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, rule)
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], cell)
			}
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, rule)
}

// RenderCSV writes headers and rows as CSV. Cells are assumed not to contain
// commas or quotes (all our cells are numbers and identifiers).
func RenderCSV(w io.Writer, headers []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(headers, ","))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// F formats a float with the given number of decimals; NaN renders as "-".
func F(v float64, prec int) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.*f", prec, v)
}

// D formats an integer.
func D(v int) string { return fmt.Sprintf("%d", v) }

// D64 formats an int64.
func D64(v int64) string { return fmt.Sprintf("%d", v) }

// Pct formats a ratio as a percentage with two decimals.
func Pct(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", 100*v)
}
