// Package sortx provides the sorting routines used by the exact
// equilibration kernel.
//
// The paper implements exact equilibration with HEAPSORT for the large
// arrays arising in constrained matrix problems (hundreds to thousands of
// breakpoints per row/column subproblem) and with STRAIGHT INSERTION SORT
// for the short arrays (10–120 elements) arising in the general problems of
// its Section 5. Both are reproduced here, together with an adaptive
// dispatcher mirroring that size-based choice, so that the ablation bench
// can compare strategies.
package sortx

// InsertionThreshold is the array length at or below which Adaptive uses
// straight insertion sort. The paper used insertion sort for arrays of 10 to
// 120 elements and heapsort for "substantially larger than one hundred".
const InsertionThreshold = 128

// Insertion sorts xs in ascending order using straight insertion sort.
// It is O(n²) in the worst case but fastest for short, nearly-sorted input.
func Insertion(xs []float64) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && xs[j] > v {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// Heap sorts xs in ascending order using heapsort: O(n log n) worst case,
// in place, no allocation.
func Heap(xs []float64) {
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(xs, i, n)
	}
	for end := n - 1; end > 0; end-- {
		xs[0], xs[end] = xs[end], xs[0]
		siftDown(xs, 0, end)
	}
}

// siftDown restores the max-heap property for the subtree rooted at i within
// xs[:n].
func siftDown(xs []float64, i, n int) {
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if child+1 < n && xs[child+1] > xs[child] {
			child++
		}
		if xs[i] >= xs[child] {
			return
		}
		xs[i], xs[child] = xs[child], xs[i]
		i = child
	}
}

// Adaptive sorts xs ascending, choosing insertion sort for short arrays and
// heapsort otherwise, as the paper's implementation does.
func Adaptive(xs []float64) {
	if len(xs) <= InsertionThreshold {
		Insertion(xs)
	} else {
		Heap(xs)
	}
}

// IsSorted reports whether xs is in ascending order.
func IsSorted(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}
