package sortx

import "slices"

// InsertionFunc sorts xs ascending under less using straight insertion sort.
func InsertionFunc[T any](xs []T, less func(a, b T) bool) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && less(v, xs[j]) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// HeapFunc sorts xs ascending under less using heapsort.
func HeapFunc[T any](xs []T, less func(a, b T) bool) {
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownFunc(xs, i, n, less)
	}
	for end := n - 1; end > 0; end-- {
		xs[0], xs[end] = xs[end], xs[0]
		siftDownFunc(xs, 0, end, less)
	}
}

func siftDownFunc[T any](xs []T, i, n int, less func(a, b T) bool) {
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if child+1 < n && less(xs[child], xs[child+1]) {
			child++
		}
		if !less(xs[i], xs[child]) {
			return
		}
		xs[i], xs[child] = xs[child], xs[i]
		i = child
	}
}

// AdaptiveFunc sorts xs ascending under less, using insertion sort for short
// slices and heapsort otherwise, mirroring the paper's implementation choice.
func AdaptiveFunc[T any](xs []T, less func(a, b T) bool) {
	if len(xs) <= InsertionThreshold {
		InsertionFunc(xs, less)
	} else {
		HeapFunc(xs, less)
	}
}

// InsertionCmp sorts xs ascending under a three-way comparison using
// straight insertion sort.
func InsertionCmp[T any](xs []T, cmp func(a, b T) int) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && cmp(v, xs[j]) < 0 {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// AdaptiveCmp sorts xs ascending under a three-way comparison: straight
// insertion sort for short slices — the paper's choice, still unbeaten
// there — and the standard library's pattern-defeating quicksort otherwise.
// The paper used HEAPSORT for the large arrays; pdqsort computes the same
// ascending order (identically for distinct keys) with a measurably smaller
// constant on cached hardware, so the equilibration kernel's hot path uses
// this while HeapFunc stays as the faithful ablation reference. The
// kernel's operation-count model still charges the paper's n·log₂n.
func AdaptiveCmp[T any](xs []T, cmp func(a, b T) int) {
	if len(xs) <= InsertionThreshold {
		InsertionCmp(xs, cmp)
	} else {
		slices.SortFunc(xs, cmp)
	}
}
