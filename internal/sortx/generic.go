package sortx

import "slices"

// InsertionFunc sorts xs ascending under less using straight insertion sort.
func InsertionFunc[T any](xs []T, less func(a, b T) bool) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && less(v, xs[j]) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// HeapFunc sorts xs ascending under less using heapsort.
func HeapFunc[T any](xs []T, less func(a, b T) bool) {
	n := len(xs)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownFunc(xs, i, n, less)
	}
	for end := n - 1; end > 0; end-- {
		xs[0], xs[end] = xs[end], xs[0]
		siftDownFunc(xs, 0, end, less)
	}
}

func siftDownFunc[T any](xs []T, i, n int, less func(a, b T) bool) {
	for {
		child := 2*i + 1
		if child >= n {
			return
		}
		if child+1 < n && less(xs[child], xs[child+1]) {
			child++
		}
		if !less(xs[i], xs[child]) {
			return
		}
		xs[i], xs[child] = xs[child], xs[i]
		i = child
	}
}

// AdaptiveFunc sorts xs ascending under less, using insertion sort for short
// slices and heapsort otherwise, mirroring the paper's implementation choice.
func AdaptiveFunc[T any](xs []T, less func(a, b T) bool) {
	if len(xs) <= InsertionThreshold {
		InsertionFunc(xs, less)
	} else {
		HeapFunc(xs, less)
	}
}

// InsertionCmp sorts xs ascending under a three-way comparison using
// straight insertion sort.
func InsertionCmp[T any](xs []T, cmp func(a, b T) int) {
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && cmp(v, xs[j]) < 0 {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = v
	}
}

// AdaptiveCmp sorts xs ascending under a three-way comparison: straight
// insertion sort for short slices — the paper's choice, still unbeaten
// there — and the standard library's pattern-defeating quicksort otherwise.
// The paper used HEAPSORT for the large arrays; pdqsort computes the same
// ascending order (identically for distinct keys) with a measurably smaller
// constant on cached hardware. The equilibration kernel's hot path has
// since moved on again, to the stable radix sort over compact keys in
// radix.go (whose stability makes the canonical tie order free); this
// generic entry point remains for comparator-ordered payloads, with
// HeapFunc as the faithful ablation reference.
func AdaptiveCmp[T any](xs []T, cmp func(a, b T) int) {
	if len(xs) <= InsertionThreshold {
		InsertionCmp(xs, cmp)
	} else {
		slices.SortFunc(xs, cmp)
	}
}

// nearlySortedBudget bounds the total element displacement NearlySortedCmp
// spends before abandoning the insertion pass: inputs within 4·len total
// inversion distance of sorted order finish in the linear pass; anything
// messier falls back to the O(n log n) sort.
const nearlySortedBudget = 4

// NearlySortedCmp sorts xs ascending under a three-way comparison, optimized
// for inputs that are already nearly sorted — the warm-start pattern of the
// equilibration kernel, where a re-solve replays the previous solve's sorted
// order and only a handful of breakpoints have drifted past a neighbor (the
// kernel itself uses the key-specialized InsertionBudgetKeys). It
// runs straight insertion with a total-displacement budget of 4·len; an
// already-sorted input costs one comparison per element, a k-inversion input
// costs O(len + k), and when the budget is exhausted the partially ordered
// slice is handed to AdaptiveCmp, keeping the worst case at O(n log n).
//
// The return value reports whether the budgeted insertion pass sufficed
// (false means the fallback sort ran). When cmp is a strict total order —
// no two distinct elements compare equal — the final ordering is unique, so
// the result is identical whichever path executed.
func NearlySortedCmp[T any](xs []T, cmp func(a, b T) int) bool {
	if InsertionBudgetCmp(xs, cmp) {
		return true
	}
	AdaptiveCmp(xs, cmp)
	return false
}

// InsertionBudgetCmp is the budgeted insertion pass of NearlySortedCmp
// without the fallback: it reports false — leaving the slice partially
// ordered but still a permutation of the input — when the displacement
// budget runs out, so callers can finish with a sort that exploits their
// element structure (e.g. the kernel's duplicate-collapsing canonical sort).
func InsertionBudgetCmp[T any](xs []T, cmp func(a, b T) int) bool {
	budget := nearlySortedBudget * len(xs)
	for i := 1; i < len(xs); i++ {
		v := xs[i]
		j := i - 1
		for j >= 0 && cmp(v, xs[j]) < 0 {
			xs[j+1] = xs[j]
			j--
			if budget--; budget < 0 {
				xs[j+1] = v // reinsert: the slice must stay a permutation
				return false
			}
		}
		xs[j+1] = v
	}
	return true
}
