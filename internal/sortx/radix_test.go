package sortx

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"
)

func keyCmp(a, b Key) int {
	switch {
	case a.Bits < b.Bits:
		return -1
	case a.Bits > b.Bits:
		return 1
	case a.Idx < b.Idx:
		return -1
	case a.Idx > b.Idx:
		return 1
	default:
		return 0
	}
}

func TestFloatBitsOrder(t *testing.T) {
	vals := []float64{
		math.Inf(-1), -math.MaxFloat64, -1e300, -2, -1, -1e-300,
		-math.SmallestNonzeroFloat64, 0, math.SmallestNonzeroFloat64,
		1e-300, 1, 2, 1e300, math.MaxFloat64, math.Inf(1),
	}
	for i := 1; i < len(vals); i++ {
		if FloatBits(vals[i-1]) >= FloatBits(vals[i]) {
			t.Errorf("FloatBits(%g) = %#x not below FloatBits(%g) = %#x",
				vals[i-1], FloatBits(vals[i-1]), vals[i], FloatBits(vals[i]))
		}
	}
	if FloatBits(math.Copysign(0, -1)) >= FloatBits(0) {
		t.Error("FloatBits(-0) should order below FloatBits(+0)")
	}
}

// keysFrom builds keys from positions in input order, the way the
// equilibration kernel does.
func keysFrom(pos []float64) []Key {
	keys := make([]Key, len(pos))
	for i, p := range pos {
		keys[i] = Key{Bits: FloatBits(p), Idx: int32(i)}
	}
	return keys
}

func TestRadixKeysMatchesComparisonSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	gens := map[string]func(n int) []float64{
		"random": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = rng.NormFloat64() * 1e4
			}
			return xs
		},
		"clustered": func(n int) []float64 {
			// A few ulp-separated values: the tie-heavy regime of the
			// equilibration kernel's first iteration.
			base := -2.0
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = base + float64(rng.IntN(3))*math.SmallestNonzeroFloat64*1e280
			}
			return xs
		},
		"allEqual": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = 3.25
			}
			return xs
		},
		"sorted": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(i)
			}
			return xs
		},
		"reversed": func(n int) []float64 {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(n - i)
			}
			return xs
		},
	}
	for name, gen := range gens {
		for _, n := range []int{0, 1, 2, 3, 129, 500, 4096} {
			keys := keysFrom(gen(n))
			want := slices.Clone(keys)
			slices.SortFunc(want, keyCmp)
			got := RadixKeys(slices.Clone(keys), make([]Key, n))
			if !slices.Equal(got, want) {
				t.Errorf("%s n=%d: RadixKeys diverges from comparison sort", name, n)
			}
		}
	}
}

func TestRadixKeysStable(t *testing.T) {
	// Many duplicates: stability must keep build (Idx) order within ties.
	rng := rand.New(rand.NewPCG(3, 5))
	pos := make([]float64, 1000)
	for i := range pos {
		pos[i] = float64(rng.IntN(7))
	}
	got := RadixKeys(keysFrom(pos), make([]Key, len(pos)))
	for i := 1; i < len(got); i++ {
		if got[i-1].Bits == got[i].Bits && got[i-1].Idx >= got[i].Idx {
			t.Fatalf("tie at %d not in build order: idx %d before %d", i, got[i-1].Idx, got[i].Idx)
		}
		if got[i-1].Bits > got[i].Bits {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestInsertionKeys(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for _, n := range []int{0, 1, 2, 50, 128} {
		pos := make([]float64, n)
		for i := range pos {
			pos[i] = float64(rng.IntN(5))
		}
		keys := keysFrom(pos)
		want := slices.Clone(keys)
		slices.SortFunc(want, keyCmp)
		InsertionKeys(keys)
		if !slices.Equal(keys, want) {
			t.Errorf("n=%d: InsertionKeys diverges from comparison sort", n)
		}
	}
}

func TestInsertionBudgetKeys(t *testing.T) {
	// Nearly sorted input: must succeed and fully sort.
	keys := keysFrom([]float64{1, 2, 3, 5, 4, 6, 7, 9, 8, 10})
	if !InsertionBudgetKeys(keys) {
		t.Fatal("nearly-sorted input should fit the budget")
	}
	for i := 1; i < len(keys); i++ {
		if !KeyLess(keys[i-1], keys[i]) {
			t.Fatalf("not sorted at %d", i)
		}
	}

	// Reversed input: must abort, leaving a permutation of the input.
	rev := make([]float64, 200)
	for i := range rev {
		rev[i] = float64(len(rev) - i)
	}
	keys = keysFrom(rev)
	if InsertionBudgetKeys(keys) {
		t.Fatal("reversed input should exhaust the budget")
	}
	seen := make([]bool, len(keys))
	for _, k := range keys {
		if seen[k.Idx] {
			t.Fatalf("idx %d duplicated after aborted pass", k.Idx)
		}
		seen[k.Idx] = true
	}
}
