package sortx

import "math"

// Key is a 16-byte sort element: a uint64 whose unsigned order is the sort
// order, plus the index of the payload it stands for. Sorting keys instead
// of fat payload structs halves the memory the sort moves, and a stable sort
// over keys built in index order yields the unique (Bits, Idx) canonical
// order with no tie repair at all.
type Key struct {
	Bits uint64
	Idx  int32
}

// FloatBits maps a float64 to a uint64 whose unsigned order matches the
// float's numeric order: negative floats have their bits inverted, positive
// ones get the sign bit set. NaN is excluded by contract (callers reject NaN
// keys before building), and -0 maps below +0 — callers that need ±0 to
// compare equal (float == semantics) must normalize -0 to +0 first.
func FloatBits(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 != 0 {
		return ^b
	}
	return b | 1<<63
}

// KeyLess is the strict (Bits, Idx) order on keys.
func KeyLess(a, b Key) bool {
	return a.Bits < b.Bits || (a.Bits == b.Bits && a.Idx < b.Idx)
}

// InsertionKeys sorts keys ascending under (Bits, Idx) by straight insertion
// sort — the right algorithm below InsertionThreshold, with no comparison-
// function indirection.
func InsertionKeys(keys []Key) {
	for i := 1; i < len(keys); i++ {
		v := keys[i]
		j := i - 1
		for j >= 0 && KeyLess(v, keys[j]) {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = v
	}
}

// InsertionBudgetKeys is the budgeted nearly-sorted insertion pass over keys
// (see InsertionBudgetCmp): it sorts in place under (Bits, Idx) and reports
// whether the total displacement stayed within nearlySortedBudget·len. On
// false the slice is left partially ordered but still a permutation of the
// input, and the caller re-sorts from scratch.
func InsertionBudgetKeys(keys []Key) bool {
	budget := nearlySortedBudget * len(keys)
	for i := 1; i < len(keys); i++ {
		v := keys[i]
		j := i - 1
		for j >= 0 && KeyLess(v, keys[j]) {
			keys[j+1] = keys[j]
			j--
			if budget--; budget < 0 {
				keys[j+1] = v // reinsert: the slice must stay a permutation
				return false
			}
		}
		keys[j+1] = v
	}
	return true
}

// RadixKeys sorts keys ascending by Bits with a stable LSD radix sort,
// using scratch (which must be at least as long) as the ping-pong buffer.
// It returns the sorted slice, which aliases either keys or scratch.
//
// Stability is the point: with Idx assigned in input order, ties on Bits
// keep input order, so the result is the unique (Bits, Idx)-sorted array —
// tie-heavy inputs (breakpoint clusters) cost nothing extra, where a
// comparison sort under the full order loses its equal-element collapse.
//
// A pre-pass ORs together the XOR of every key with the first one; byte
// positions absent from that mask are constant across the input and their
// passes are skipped entirely. Clustered inputs — values differing in a few
// low mantissa bytes — therefore pay only those few counting passes, and an
// all-equal input returns immediately.
func RadixKeys(keys, scratch []Key) []Key {
	n := len(keys)
	if n < 2 {
		return keys
	}
	b0 := keys[0].Bits
	var diff uint64
	for _, k := range keys {
		diff |= k.Bits ^ b0
	}
	return RadixKeysMask(keys, scratch, diff)
}

// RadixKeysMask is RadixKeys with the differing-byte mask precomputed by the
// caller — batch kernels fold the XOR mask while building keys, saving the
// pre-pass over data that has since left cache. diff must cover the pairwise
// XORs of the keys' Bits (an OR of each key XOR any one fixed reference does,
// since k1^k2 = (k1^ref)^(k2^ref)); byte positions absent from it are
// constant across the input and skipped. A superset mask only costs extra
// counting passes, never correctness. diff == 0 returns keys unchanged.
func RadixKeysMask(keys, scratch []Key, diff uint64) []Key {
	n := len(keys)
	if n < 2 || diff == 0 {
		return keys
	}
	// Collect the active byte planes, then fill every plane's histogram in
	// a single read pass: a byte histogram is permutation-invariant, so the
	// counts taken on the input array are valid for every later pass even
	// though the keys have moved between the buffers by then. Each radix
	// pass is thereby scatter-only — one stream over the keys instead of
	// the count+scatter two — which matters once the key array outgrows L1
	// (fused multi-subproblem batches; see internal/equilibrate.Batch).
	var shifts [8]uint
	np := 0
	for shift := uint(0); shift < 64; shift += 8 {
		if (diff>>shift)&0xff != 0 {
			shifts[np] = shift
			np++
		}
	}
	var counts [8][256]int32
	for i := range keys {
		b := keys[i].Bits
		for p := 0; p < np; p++ {
			counts[p][(b>>shifts[p])&0xff]++
		}
	}
	src, dst := keys[:n], scratch[:n]
	for p := 0; p < np; p++ {
		count := &counts[p]
		var sum int32
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		shift := shifts[p]
		for _, k := range src {
			b := (k.Bits >> shift) & 0xff
			dst[count[b]] = k
			count[b]++
		}
		src, dst = dst, src
	}
	return src
}
