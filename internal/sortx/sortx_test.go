package sortx

import (
	"math/rand/v2"
	"slices"
	"testing"
	"testing/quick"
)

func randomSlice(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 1e4
	}
	return xs
}

func testSorter(t *testing.T, name string, sort func([]float64)) {
	t.Helper()
	rng := rand.New(rand.NewPCG(1, 2))
	sizes := []int{0, 1, 2, 3, 7, 10, 100, 127, 128, 129, 500, 4096}
	for _, n := range sizes {
		xs := randomSlice(rng, n)
		want := slices.Clone(xs)
		slices.Sort(want)
		sort(xs)
		if !slices.Equal(xs, want) {
			t.Errorf("%s: size %d: not sorted correctly", name, n)
		}
	}
}

func TestInsertion(t *testing.T) { testSorter(t, "Insertion", Insertion) }
func TestHeap(t *testing.T)      { testSorter(t, "Heap", Heap) }
func TestAdaptive(t *testing.T)  { testSorter(t, "Adaptive", Adaptive) }

func TestAlreadySorted(t *testing.T) {
	xs := []float64{-3, -1, 0, 0, 2, 5, 9}
	for _, sort := range []func([]float64){Insertion, Heap, Adaptive} {
		ys := slices.Clone(xs)
		sort(ys)
		if !slices.Equal(xs, ys) {
			t.Errorf("sorted input permuted: %v", ys)
		}
	}
}

func TestReverseSorted(t *testing.T) {
	xs := []float64{9, 5, 2, 0, 0, -1, -3}
	want := []float64{-3, -1, 0, 0, 2, 5, 9}
	for _, sort := range []func([]float64){Insertion, Heap, Adaptive} {
		ys := slices.Clone(xs)
		sort(ys)
		if !slices.Equal(want, ys) {
			t.Errorf("reverse input not sorted: %v", ys)
		}
	}
}

func TestDuplicates(t *testing.T) {
	xs := make([]float64, 300)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := range xs {
		xs[i] = float64(rng.IntN(5))
	}
	want := slices.Clone(xs)
	slices.Sort(want)
	Heap(xs)
	if !slices.Equal(xs, want) {
		t.Errorf("duplicates mishandled")
	}
}

// TestHeapSortsProperty is a property-based test: Heap always produces an
// ascending permutation of its input.
func TestHeapSortsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		orig := slices.Clone(xs)
		Heap(xs)
		if !IsSorted(xs) {
			return false
		}
		slices.Sort(orig)
		// NaNs compare unequal to themselves; skip inputs containing them
		// since the kernel never produces NaN breakpoints.
		for _, v := range orig {
			if v != v {
				return true
			}
		}
		return slices.Equal(xs, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestInsertionSortsProperty mirrors TestHeapSortsProperty for insertion sort.
func TestInsertionSortsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, v := range xs {
			if v != v {
				return true
			}
		}
		orig := slices.Clone(xs)
		Insertion(xs)
		slices.Sort(orig)
		return slices.Equal(xs, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsSorted(t *testing.T) {
	cases := []struct {
		xs   []float64
		want bool
	}{
		{nil, true},
		{[]float64{1}, true},
		{[]float64{1, 1}, true},
		{[]float64{1, 2, 3}, true},
		{[]float64{3, 2}, false},
		{[]float64{1, 2, 1}, false},
	}
	for _, c := range cases {
		if got := IsSorted(c.xs); got != c.want {
			t.Errorf("IsSorted(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// TestNearlySortedCmp checks the budgeted insertion path sorts correctly on
// random, sorted, and adversarial inputs, and that the reported fast/fallback
// verdict matches the input's disorder.
func TestNearlySortedCmp(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, n := range []int{0, 1, 2, 3, 10, 100, 500, 4096} {
		xs := randomSlice(rng, n)
		want := slices.Clone(xs)
		slices.Sort(want)
		NearlySortedCmp(xs, cmpFloat)
		if !slices.Equal(xs, want) {
			t.Errorf("size %d: random input not sorted", n)
		}
	}

	sorted := make([]float64, 1000)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	if !NearlySortedCmp(slices.Clone(sorted), cmpFloat) {
		t.Error("sorted input should stay on the fast path")
	}

	// A few local swaps: well within the displacement budget.
	nearly := slices.Clone(sorted)
	for i := 0; i+1 < len(nearly); i += 97 {
		nearly[i], nearly[i+1] = nearly[i+1], nearly[i]
	}
	want := slices.Clone(nearly)
	slices.Sort(want)
	if !NearlySortedCmp(nearly, cmpFloat) {
		t.Error("nearly sorted input should stay on the fast path")
	}
	if !slices.Equal(nearly, want) {
		t.Error("nearly sorted input not sorted")
	}

	// Reverse order: quadratic for insertion, must fall back — and still
	// produce the sorted result.
	rev := make([]float64, 1000)
	for i := range rev {
		rev[i] = float64(len(rev) - i)
	}
	want = slices.Clone(rev)
	slices.Sort(want)
	if NearlySortedCmp(rev, cmpFloat) {
		t.Error("reverse input should exhaust the budget and fall back")
	}
	if !slices.Equal(rev, want) {
		t.Error("fallback path not sorted")
	}
}

// TestNearlySortedCmpProperty: for any input, NearlySortedCmp produces the
// ascending permutation — whichever path ran.
func TestNearlySortedCmpProperty(t *testing.T) {
	f := func(xs []float64) bool {
		for _, v := range xs {
			if v != v {
				return true
			}
		}
		orig := slices.Clone(xs)
		NearlySortedCmp(xs, cmpFloat)
		slices.Sort(orig)
		return slices.Equal(xs, orig)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func benchSorter(b *testing.B, n int, sort func([]float64)) {
	rng := rand.New(rand.NewPCG(5, 6))
	src := randomSlice(rng, n)
	buf := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		sort(buf)
	}
}

// BenchmarkNearlySorted1000 measures the warm-start case: a sorted array
// with a handful of adjacent swaps, repaired by the budgeted insertion pass.
func BenchmarkNearlySorted1000(b *testing.B) {
	src := make([]float64, 1000)
	for i := range src {
		src[i] = float64(i)
	}
	for i := 0; i+1 < len(src); i += 101 {
		src[i], src[i+1] = src[i+1], src[i]
	}
	buf := make([]float64, len(src))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(buf, src)
		NearlySortedCmp(buf, cmpFloat)
	}
}

func BenchmarkHeap1000(b *testing.B)     { benchSorter(b, 1000, Heap) }
func BenchmarkInsertion100(b *testing.B) { benchSorter(b, 100, Insertion) }
func BenchmarkAdaptive100(b *testing.B)  { benchSorter(b, 100, Adaptive) }
func BenchmarkAdaptive1000(b *testing.B) { benchSorter(b, 1000, Adaptive) }
func BenchmarkStdSort1000(b *testing.B)  { benchSorter(b, 1000, slices.Sort[[]float64]) }
