package testutil

import (
	"strings"
	"testing"
	"time"
)

// TestCheckGoroutinesClean: a test that starts and joins its goroutines
// passes the check.
func TestCheckGoroutinesClean(t *testing.T) {
	CheckGoroutines(t)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// TestLeakDetection drives the detector against a deliberately leaked
// goroutine through a fake testing.TB, then releases it.
func TestLeakDetection(t *testing.T) {
	base := goroutineIDs()
	release := make(chan struct{})
	go func() { <-release }()
	defer close(release)

	// The leaked goroutine must show up...
	deadline := time.Now().Add(time.Second)
	for {
		if len(leakedSince(base)) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("leakedSince = %d goroutines, want 1", len(leakedSince(base)))
		}
		time.Sleep(time.Millisecond)
	}
	got := leakedSince(base)
	if !strings.Contains(got[0].stack, "TestLeakDetection") {
		t.Errorf("leaked stack does not name the leaking test:\n%s", got[0].stack)
	}
}

// TestIgnoredGoroutine: framework stacks never count as leaks.
func TestIgnoredGoroutine(t *testing.T) {
	if !ignoredGoroutine("goroutine 1 [chan receive]:\ntesting.tRunner(0xc0, 0x12)") {
		t.Error("testing.tRunner not ignored")
	}
	if ignoredGoroutine("goroutine 7 [select]:\nsea/pkg/sea/serve.(*Server).worker(0xc0)") {
		t.Error("application goroutine wrongly ignored")
	}
}
