// Package testutil holds helpers shared across the repository's test
// suites. The flagship is the goroutine-leak check used by the serving and
// transport tests: layers whose whole job is starting and draining
// goroutines (worker pools, admission queues, streamed HTTP responses) are
// exactly the layers where a missed Wait shows up only as a slow leak.
package testutil

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakSettleTimeout is how long a test's goroutines get to drain after the
// test body returns. Shutdown paths under test are synchronous (Close waits
// on its WaitGroup), so the budget only absorbs scheduler lag — generous
// here, since CI machines can be single-core and heavily loaded.
const leakSettleTimeout = 10 * time.Second

// CheckGoroutines snapshots the live goroutines and registers a cleanup
// that fails the test if goroutines created during the test are still
// running once it ends. Call it first thing in the test body:
//
//	func TestServerDrains(t *testing.T) {
//		testutil.CheckGoroutines(t)
//		...
//	}
//
// The check polls until the settle timeout, so goroutines legitimately
// mid-exit (a worker between its last channel receive and returning) do not
// flake the test. Background goroutines owned by the runtime and the
// testing framework are ignored.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	base := goroutineIDs()
	t.Cleanup(func() {
		deadline := time.Now().Add(leakSettleTimeout)
		var leaked []goroutine
		for {
			leaked = leakedSince(base)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		var sb strings.Builder
		for _, g := range leaked {
			fmt.Fprintf(&sb, "\n%s\n", g.stack)
		}
		t.Errorf("testutil: %d goroutine(s) leaked by this test:%s", len(leaked), sb.String())
	})
}

// goroutine is one parsed entry of a full runtime stack dump.
type goroutine struct {
	id    string
	stack string
}

// dumpGoroutines parses runtime.Stack(all=true) into individual records.
func dumpGoroutines() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		block = strings.TrimSpace(block)
		if block == "" {
			continue
		}
		// Header: "goroutine 123 [running]:"
		header, _, _ := strings.Cut(block, "\n")
		fields := strings.Fields(header)
		if len(fields) < 2 || fields[0] != "goroutine" {
			continue
		}
		out = append(out, goroutine{id: fields[1], stack: block})
	}
	return out
}

// goroutineIDs returns the set of currently live goroutine ids.
func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, g := range dumpGoroutines() {
		ids[g.id] = true
	}
	return ids
}

// leakedSince returns goroutines not alive at snapshot time and not on the
// ignore list.
func leakedSince(base map[string]bool) []goroutine {
	var leaked []goroutine
	for _, g := range dumpGoroutines() {
		if base[g.id] || ignoredGoroutine(g.stack) {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}

// ignoredGoroutine reports whether the stack belongs to infrastructure the
// test does not own: the testing framework, the runtime's own helpers, and
// this package's check itself.
func ignoredGoroutine(stack string) bool {
	for _, marker := range []string{
		"testing.tRunner(",
		"testing.(*T).Run(",
		"testing.runTests(",
		"testing.Main(",
		"runtime.goexit",
		"runtime.gc",
		"runtime.bgsweep",
		"runtime.bgscavenge",
		"runtime.forcegchelper",
		"runtime/trace.Start",
		"os/signal.signal_recv",
		"os/signal.loop",
		"testutil.CheckGoroutines",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
